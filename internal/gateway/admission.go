package gateway

import (
	"errors"
	"strings"
	"sync"
	"time"

	"gem5art/internal/core/tasks"
)

// jobIDPrefix marks gateway-submitted jobs. IDs read
// "g/<tenant>/<launch>/<index>", so every layer — admission, the result
// pump, the shard ring — can recover the owning tenant from the job ID
// alone.
const jobIDPrefix = "g/"

// TenantOf extracts the tenant from a gateway job ID, or "" for jobs
// submitted by trusted in-process callers (which bypass quotas).
func TenantOf(jobID string) string {
	if !strings.HasPrefix(jobID, jobIDPrefix) {
		return ""
	}
	rest := jobID[len(jobIDPrefix):]
	tenant, _, ok := strings.Cut(rest, "/")
	if !ok {
		return ""
	}
	return tenant
}

// Backend is the control plane the gateway submits into: a single
// *tasks.Broker or a sharded *shard.Fleet, both of which expose the
// admission-gated TrySubmit and a result stream.
type Backend interface {
	TrySubmit(j tasks.Job) error
	Results() <-chan tasks.JobResult
}

// tenantState is one tenant's admission bookkeeping.
type tenantState struct {
	inflight int         // jobs admitted to the backend, result pending
	parked   []tasks.Job // bounded queue awaiting capacity
	lastSeq  uint64      // dispatch recency, for fair tie-breaking
}

// Controller implements tasks.Admission with per-tenant in-flight caps,
// bounded parked queues, and weighted fair dispatch: when capacity
// frees, the parked tenant with the lowest in-flight/weight ratio
// dispatches next, so a tenant flooding its queue cannot starve a
// lighter one. It is installed on the broker/fleet submit path
// (BrokerOptions.Admission / shard.Options.Admission) and fed parked
// work through Reserve + Kick by the gateway's launch handler.
type Controller struct {
	// RetryAfter is the backoff hint attached to rejections (default 1s).
	RetryAfter time.Duration

	mu       sync.Mutex
	quotas   map[string]Quota
	fallback Quota
	state    map[string]*tenantState
	admitted map[string]tasks.Job // job ID -> job, for idempotent Admit
	seq      uint64

	// dispatchMu serializes Kick loops so the capacity a pick observed
	// cannot be claimed by a concurrent picker before Admit runs.
	dispatchMu sync.Mutex
	submit     func(tasks.Job) error // backend TrySubmit; set by Bind
	onDrop     func(tasks.Job, error)
}

// NewController builds a controller over the config's quotas. Bind must
// be called before any job parks.
func NewController(cfg *Config) *Controller {
	c := &Controller{
		RetryAfter: time.Second,
		state:      make(map[string]*tenantState),
		admitted:   make(map[string]tasks.Job),
	}
	c.SetConfig(cfg)
	return c
}

// Bind points the controller at the backend submit path and an optional
// drop callback invoked when a parked job is lost because the backend
// refused it terminally (e.g. closed during shutdown).
func (c *Controller) Bind(submit func(tasks.Job) error, onDrop func(tasks.Job, error)) {
	c.dispatchMu.Lock()
	c.submit = submit
	c.onDrop = onDrop
	c.dispatchMu.Unlock()
}

// SetConfig swaps the quota table in place. Live in-flight counts and
// parked queues survive: a SIGHUP reload tightens or loosens limits for
// future decisions without dropping queued work.
func (c *Controller) SetConfig(cfg *Config) {
	quotas := make(map[string]Quota, len(cfg.Tenants))
	for _, tc := range cfg.Tenants {
		quotas[tc.ID] = cfg.QuotaFor(tc)
	}
	fallback := cfg.DefaultQuota
	if fallback.Weight < 1 {
		fallback.Weight = 1
	}
	if fallback.MaxInFlight < 1 {
		fallback.MaxInFlight = 1
	}
	c.mu.Lock()
	c.quotas = quotas
	c.fallback = fallback
	c.mu.Unlock()
}

func (c *Controller) quotaLocked(tenant string) Quota {
	if q, ok := c.quotas[tenant]; ok {
		return q
	}
	return c.fallback
}

func (c *Controller) stateLocked(tenant string) *tenantState {
	st, ok := c.state[tenant]
	if !ok {
		st = &tenantState{}
		c.state[tenant] = st
	}
	return st
}

// Admit implements tasks.Admission: it reserves one in-flight slot for
// the job's tenant or rejects with *tasks.QuotaExceededError. Jobs
// without a gateway tenant prefix are always admitted untracked — the
// in-process submit paths keep their semantics even with a controller
// installed. Admit is idempotent per job ID, matching the durable
// queue's resubmit deduplication.
func (c *Controller) Admit(j tasks.Job) error {
	tenant := TenantOf(j.ID)
	if tenant == "" {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.admitted[j.ID]; ok {
		return nil
	}
	st := c.stateLocked(tenant)
	q := c.quotaLocked(tenant)
	if st.inflight >= q.MaxInFlight {
		gwRejected.With(tenant, "in_flight").Inc()
		return &tasks.QuotaExceededError{
			Tenant: tenant, Reason: "max in-flight jobs",
			Limit: q.MaxInFlight, RetryAfter: c.RetryAfter,
		}
	}
	st.inflight++
	c.admitted[j.ID] = j
	gwAdmitted.With(tenant).Inc()
	c.publishLocked(tenant, st, q)
	return nil
}

// Release implements tasks.Admission: the job's result is recorded, its
// slot frees, and parked work dispatches. Unknown jobs are no-ops.
func (c *Controller) Release(j tasks.Job) {
	tenant := TenantOf(j.ID)
	if tenant == "" {
		return
	}
	c.mu.Lock()
	if _, ok := c.admitted[j.ID]; !ok {
		c.mu.Unlock()
		return
	}
	delete(c.admitted, j.ID)
	st := c.stateLocked(tenant)
	if st.inflight > 0 {
		st.inflight--
	}
	c.publishLocked(tenant, st, c.quotaLocked(tenant))
	c.mu.Unlock()
	// Kick asynchronously: Release can be reached from inside a submit
	// call the dispatcher itself made (the broker's replay-of-done
	// dedup path), where a synchronous Kick would self-deadlock on
	// dispatchMu.
	go c.Kick()
}

// Reserve parks a launch's jobs behind the tenant's queue bound,
// rejecting the whole launch when in-flight + parked + new would exceed
// MaxInFlight + MaxQueued — a launch is admitted or refused atomically,
// never half-queued. Call Kick afterwards (once the launch is recorded)
// to start dispatching.
func (c *Controller) Reserve(tenant string, jobs []tasks.Job) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stateLocked(tenant)
	q := c.quotaLocked(tenant)
	if st.inflight+len(st.parked)+len(jobs) > q.MaxInFlight+q.MaxQueued {
		gwRejected.With(tenant, "queue_full").Inc()
		return &tasks.QuotaExceededError{
			Tenant: tenant, Reason: "queue full",
			Limit: q.MaxInFlight + q.MaxQueued, RetryAfter: c.RetryAfter,
		}
	}
	st.parked = append(st.parked, jobs...)
	c.publishLocked(tenant, st, q)
	return nil
}

// CancelPrefix removes parked jobs whose IDs start with prefix and
// returns them — the cancel path for a launch whose jobs have not yet
// dispatched. In-flight jobs are not recalled; their results arrive and
// release normally.
func (c *Controller) CancelPrefix(tenant, prefix string) []tasks.Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.state[tenant]
	if !ok {
		return nil
	}
	var canceled []tasks.Job
	kept := st.parked[:0]
	for _, j := range st.parked {
		if strings.HasPrefix(j.ID, prefix) {
			canceled = append(canceled, j)
		} else {
			kept = append(kept, j)
		}
	}
	st.parked = kept
	c.publishLocked(tenant, st, c.quotaLocked(tenant))
	return canceled
}

// Kick dispatches parked jobs while capacity allows, always picking the
// tenant with the lowest in-flight/weight ratio (ties broken by least
// recent dispatch). Loops are serialized: the fairness pick and the
// Admit that consumes its capacity cannot interleave with another loop.
func (c *Controller) Kick() {
	c.dispatchMu.Lock()
	defer c.dispatchMu.Unlock()
	if c.submit == nil {
		return
	}
	skip := make(map[string]bool)
	for {
		j, tenant, ok := c.pick(skip)
		if !ok {
			return
		}
		err := c.submit(j)
		if err == nil {
			continue
		}
		var quota *tasks.QuotaExceededError
		if errors.As(err, &quota) {
			// Lost a race with a direct TrySubmit; put the job back in
			// front and try other tenants this round.
			c.requeueFront(tenant, j)
			skip[tenant] = true
			continue
		}
		// Terminal refusal (backend closed): the job is dropped, not
		// silently — the gateway's onDrop marks its run failed.
		gwDropped.With(tenant).Inc()
		if c.onDrop != nil {
			c.onDrop(j, err)
		}
	}
}

// pick pops the next job under the weighted-fair policy, or reports
// none dispatchable.
func (c *Controller) pick(skip map[string]bool) (tasks.Job, string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var (
		best      *tenantState
		bestName  string
		bestRatio float64
	)
	for name, st := range c.state {
		if skip[name] || len(st.parked) == 0 {
			continue
		}
		q := c.quotaLocked(name)
		if st.inflight >= q.MaxInFlight {
			continue
		}
		ratio := float64(st.inflight) / float64(q.Weight)
		if best == nil || ratio < bestRatio ||
			(ratio == bestRatio && st.lastSeq < best.lastSeq) {
			best, bestName, bestRatio = st, name, ratio
		}
	}
	if best == nil {
		return tasks.Job{}, "", false
	}
	j := best.parked[0]
	best.parked = best.parked[1:]
	c.seq++
	best.lastSeq = c.seq
	gwDispatched.With(bestName).Inc()
	c.publishLocked(bestName, best, c.quotaLocked(bestName))
	return j, bestName, true
}

func (c *Controller) requeueFront(tenant string, j tasks.Job) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stateLocked(tenant)
	st.parked = append([]tasks.Job{j}, st.parked...)
	c.publishLocked(tenant, st, c.quotaLocked(tenant))
}

// InFlight reports a tenant's current admitted-but-unfinished count.
func (c *Controller) InFlight(tenant string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.state[tenant]; ok {
		return st.inflight
	}
	return 0
}

// Queued reports a tenant's parked-queue depth.
func (c *Controller) Queued(tenant string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.state[tenant]; ok {
		return len(st.parked)
	}
	return 0
}

// publishLocked refreshes the tenant's gauges: live in-flight, queue
// depth, and the fair-share ratio the dispatcher balances on.
func (c *Controller) publishLocked(tenant string, st *tenantState, q Quota) {
	gwInFlight.With(tenant).Set(float64(st.inflight))
	gwQueued.With(tenant).Set(float64(len(st.parked)))
	gwFairShare.With(tenant).Set(float64(st.inflight) / float64(q.Weight))
}
