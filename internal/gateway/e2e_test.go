package gateway

// End-to-end acceptance: two tenants submit launches over authenticated
// HTTP to a gateway fronting a real sharded fleet with live workers.
// Runs complete, tenants cannot see each other's launches, an
// over-quota tenant is refused with 429 and succeeds once capacity
// frees, and the per-tenant gateway metrics report the traffic.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"gem5art/internal/core/tasks"
	"gem5art/internal/core/tasks/shard"
	"gem5art/internal/database"
	"gem5art/internal/statusd"
)

// scrapeMetric reads one series' value from /metrics exposition text,
// e.g. scrapeMetric(body, `gem5art_gateway_jobs_admitted_total{tenant="alpha"}`).
func scrapeMetric(body, series string) float64 {
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, series) {
			continue
		}
		rest := strings.TrimSpace(line[len(series):])
		v, err := strconv.ParseFloat(rest, 64)
		if err == nil {
			return v
		}
	}
	return 0
}

func TestEndToEndTwoTenantsShardedFleet(t *testing.T) {
	cfg := testConfig(
		TenantConfig{ID: "alpha", Token: "tok-alpha",
			Quota: &Quota{MaxInFlight: 16, MaxQueued: 64, Weight: 2}},
		TenantConfig{ID: "beta", Token: "tok-beta",
			Quota: &Quota{MaxInFlight: 2, MaxQueued: 2, Weight: 1}},
	)
	db := database.MustOpen("")
	defer db.Close()

	ctrl := NewController(cfg)
	f, err := shard.NewFleet(shard.Options{
		Shards: 2,
		Dir:    t.TempDir(),
		Broker: tasks.BrokerOptions{
			HeartbeatTimeout: 400 * time.Millisecond,
			Lease:            800 * time.Millisecond,
			Retry:            tasks.RetryPolicy{MaxAttempts: 5, BaseDelay: 5 * time.Millisecond},
		},
		LeaseTTL:     120 * time.Millisecond,
		ShipInterval: 10 * time.Millisecond,
		Admission:    ctrl,
	})
	if err != nil {
		t.Fatal(err)
	}

	// One fast worker per shard handling the boot suite's job kind. The
	// handler blocks until the over-quota check below has run: otherwise
	// beta's jobs can complete between two submits, freeing capacity and
	// turning the expected 429 into a 202.
	release := make(chan struct{})
	fastBoot := func(json.RawMessage) (any, error) {
		<-release
		return map[string]any{"outcome": "kernel_panic_free", "sim_seconds": 0.01}, nil
	}
	for s := 0; s < 2; s++ {
		s := s
		w, err := tasks.NewWorkerWithOptions(f.ShardAddr(s), tasks.WorkerOptions{
			Capacity:          4,
			Handlers:          map[string]tasks.JobHandler{"boot": fastBoot},
			HeartbeatInterval: 25 * time.Millisecond,
			ID:                fmt.Sprintf("e2e-w%d", s),
			Reconnect:         true,
			Dial: func(string) (net.Conn, error) {
				return net.Dial("tcp", f.ShardAddr(s))
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Kill)
	}

	// The full service-mode stack: gateway in front, statusd behind.
	sd := statusd.New(db)
	sd.Fleet = f
	g := New(cfg, ctrl, f, db, sd.Handler())
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	defer g.Wait()
	defer f.Close()

	metricsBefore := func() string {
		resp := apiReq(t, "GET", srv.URL+"/metrics", "", nil)
		var sb strings.Builder
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			sb.WriteString(sc.Text())
			sb.WriteString("\n")
		}
		return sb.String()
	}
	before := metricsBefore()
	alphaAdmitted0 := scrapeMetric(before, `gem5art_gateway_jobs_admitted_total{tenant="alpha"}`)
	betaAdmitted0 := scrapeMetric(before, `gem5art_gateway_jobs_admitted_total{tenant="beta"}`)

	// Both tenants submit; alpha's sweep is larger than one shard's
	// worker capacity so jobs spread across the ring.
	alphaLaunch, resp := submitLaunch(t, srv, "tok-alpha", 10)
	if resp.StatusCode != 202 {
		t.Fatalf("alpha launch: status %d", resp.StatusCode)
	}
	betaLaunch, resp := submitLaunch(t, srv, "tok-beta", 4)
	if resp.StatusCode != 202 {
		t.Fatalf("beta launch: status %d", resp.StatusCode)
	}

	// Beta is at in-flight(2)+parked(2): one more job must be refused.
	_, resp = submitLaunch(t, srv, "tok-beta", 1)
	if resp.StatusCode != 429 {
		t.Fatalf("beta over-quota: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	close(release)

	// Both launches run to completion through the real fleet.
	waitLaunch := func(token, id string) map[string]any {
		var doc map[string]any
		waitFor(t, func() bool {
			resp := apiReq(t, "GET", srv.URL+"/api/launches/"+id, token, nil)
			if resp.StatusCode != 200 {
				return false
			}
			doc = decodeBody(t, resp)
			return doc["status"] == "finished"
		}, "launch "+id+" finished")
		return doc
	}
	alphaDoc := waitLaunch("tok-alpha", alphaLaunch)
	betaDoc := waitLaunch("tok-beta", betaLaunch)
	if got := alphaDoc["done"].(float64); got != 10 {
		t.Fatalf("alpha done = %v, want 10 (doc %v)", got, alphaDoc)
	}
	if got := betaDoc["failed"].(float64); got != 0 {
		t.Fatalf("beta failed = %v, want 0 (doc %v)", got, betaDoc)
	}

	// Capacity freed: the launch beta was refused now clears admission.
	retryLaunch, resp := submitLaunch(t, srv, "tok-beta", 1)
	if resp.StatusCode != 202 {
		t.Fatalf("beta retry after drain: status %d, want 202", resp.StatusCode)
	}
	waitLaunch("tok-beta", retryLaunch)

	// Tenant isolation over the live API: beta cannot read alpha's
	// launch, and neither list leaks across namespaces.
	resp = apiReq(t, "GET", srv.URL+"/api/launches/"+alphaLaunch, "tok-beta", nil)
	if resp.StatusCode != 404 {
		t.Fatalf("cross-tenant read: status %d, want 404", resp.StatusCode)
	}
	resp = apiReq(t, "GET", srv.URL+"/api/launches", "tok-alpha", nil)
	for _, l := range decodeBody(t, resp)["launches"].([]any) {
		if l.(map[string]any)["_id"] == betaLaunch {
			t.Fatal("alpha's launch list contains beta's launch")
		}
	}

	// Per-tenant gateway metrics report the admitted traffic (deltas:
	// the registry is process-global and other tests also feed it).
	after := metricsBefore()
	if d := scrapeMetric(after, `gem5art_gateway_jobs_admitted_total{tenant="alpha"}`) - alphaAdmitted0; d != 10 {
		t.Errorf("alpha admitted delta = %v, want 10", d)
	}
	if d := scrapeMetric(after, `gem5art_gateway_jobs_admitted_total{tenant="beta"}`) - betaAdmitted0; d != 5 {
		t.Errorf("beta admitted delta = %v, want 5", d)
	}
	if v := scrapeMetric(after, `gem5art_gateway_jobs_rejected_total{tenant="beta",reason="queue_full"}`); v < 1 {
		t.Errorf("beta queue_full rejections = %v, want >= 1", v)
	}
	if v := scrapeMetric(after, `gem5art_gateway_launches_total{tenant="beta"}`); v < 2 {
		t.Errorf("beta launches = %v, want >= 2", v)
	}
}
