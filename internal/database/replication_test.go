package database

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"
)

// openDB opens a concrete *DB for replication tests, which exercise
// engine-level hooks the storage.Store interface does not carry.
func openDB(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := open(dir, Options{Journal: true, SyncOnCommit: false, CompactAfter: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// replDocsByID normalizes documents through a JSON round-trip so a
// primary's in-memory ints compare equal to a replica's replayed
// float64s — the same widening a plain restart produces.
func replDocsByID(t *testing.T, db *DB, col string) map[string]Doc {
	t.Helper()
	out := map[string]Doc{}
	for _, d := range db.Collection(col).Find(nil) {
		raw, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		var norm Doc
		if err := json.Unmarshal(raw, &norm); err != nil {
			t.Fatal(err)
		}
		out[fmt.Sprint(d["_id"])] = norm
	}
	return out
}

func assertConverged(t *testing.T, primary, replica *DB, col string) {
	t.Helper()
	p, r := replDocsByID(t, primary, col), replDocsByID(t, replica, col)
	if !reflect.DeepEqual(p, r) {
		t.Fatalf("replica diverged from primary:\nprimary: %v\nreplica: %v", p, r)
	}
}

// shipAll drains the primary's journal into the replica from (gen,
// offset), returning the new offset.
func shipAll(t *testing.T, primary, replica *DB, col string, gen uint64, from int64) int64 {
	t.Helper()
	for {
		data, next, err := primary.JournalSegment(col, gen, from, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			return from
		}
		_, consumed, err := replica.ApplyJournalSegment(col, data)
		if err != nil {
			t.Fatal(err)
		}
		if consumed != int64(len(data)) {
			t.Fatalf("clean segment partially consumed: %d/%d", consumed, len(data))
		}
		from = next
	}
}

func TestJournalSegmentShipAndReplay(t *testing.T) {
	primary := openDB(t, t.TempDir())
	replica := openDB(t, t.TempDir())
	defer primary.Close()
	defer replica.Close()

	col := "queue"
	for i := 0; i < 20; i++ {
		if _, err := primary.Collection(col).InsertOne(Doc{"_id": fmt.Sprintf("job-%02d", i), "state": "pending", "n": i}); err != nil {
			t.Fatal(err)
		}
	}
	off := shipAll(t, primary, replica, col, 0, 0)

	// Mutations after the first shipment arrive incrementally.
	for i := 0; i < 10; i++ {
		if _, err := primary.Collection(col).UpdateOne(Doc{"_id": fmt.Sprintf("job-%02d", i)}, Doc{"state": "done"}); err != nil {
			t.Fatal(err)
		}
	}
	primary.Collection(col).DeleteMany(Doc{"_id": "job-19"})
	off = shipAll(t, primary, replica, col, 0, off)
	assertConverged(t, primary, replica, col)

	if got := replica.Collection(col).Count(Doc{"state": "done"}); got != 10 {
		t.Fatalf("replica done count = %d, want 10", got)
	}
	if off != primary.JournalSize(col) {
		t.Fatalf("offset %d != primary journal size %d", off, primary.JournalSize(col))
	}
}

// TestApplyJournalSegmentTornTail is the standby-receives-a-torn-tail
// scenario: a shipment cut mid-record applies its valid prefix, reports
// the consumed offset, and the resumed shipment from that offset
// converges the replica with the primary — no divergence, no skipped
// or doubled records.
func TestApplyJournalSegmentTornTail(t *testing.T) {
	primary := openDB(t, t.TempDir())
	replica := openDB(t, t.TempDir())
	defer primary.Close()
	defer replica.Close()

	col := "queue"
	for i := 0; i < 8; i++ {
		if _, err := primary.Collection(col).InsertOne(Doc{"_id": fmt.Sprintf("job-%d", i), "state": "pending"}); err != nil {
			t.Fatal(err)
		}
	}
	data, _, err := primary.JournalSegment(col, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the shipment in the middle of its last record.
	cut := len(data) - len(data)/6
	torn := data[:cut]
	applied, consumed, err := replica.ApplyJournalSegment(col, torn)
	if err != nil {
		t.Fatal(err)
	}
	if applied >= 8 || applied == 0 {
		t.Fatalf("torn segment applied %d records, want a strict prefix of 8", applied)
	}
	if consumed >= int64(cut) {
		t.Fatalf("consumed %d of a %d-byte torn segment", consumed, cut)
	}
	if got := replica.Collection(col).Count(nil); got != applied {
		t.Fatalf("replica holds %d docs after torn apply, want %d", got, applied)
	}

	// A corrupted (bit-flipped, not merely truncated) tail must stop the
	// apply at the same boundary: the valid prefix.
	corrupt := append(append([]byte(nil), data[:consumed]...), data[consumed:]...)
	corrupt[consumed+int64(10)] ^= 0xff
	applied2, consumed2, err := replica.ApplyJournalSegment(col, corrupt[consumed:])
	if err != nil {
		t.Fatal(err)
	}
	if applied2 != 0 || consumed2 != 0 {
		t.Fatalf("corrupt record applied: %d records, %d bytes", applied2, consumed2)
	}

	// Resync from the consumed offset with clean bytes: full convergence.
	if _, c2, err := replica.ApplyJournalSegment(col, data[consumed:]); err != nil {
		t.Fatal(err)
	} else if consumed+c2 != int64(len(data)) {
		t.Fatalf("resumed shipment consumed %d, want %d", consumed+c2, int64(len(data))-consumed)
	}
	assertConverged(t, primary, replica, col)
}

// A replica that crashes after applying shipped records must reload
// them: ApplyJournalSegment journals locally.
func TestReplicaAppliedSegmentsAreDurable(t *testing.T) {
	primary := openDB(t, t.TempDir())
	repDir := t.TempDir()
	replica := openDB(t, repDir)
	defer primary.Close()

	col := "queue"
	for i := 0; i < 5; i++ {
		if _, err := primary.Collection(col).InsertOne(Doc{"_id": fmt.Sprintf("job-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	shipAll(t, primary, replica, col, 0, 0)
	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}

	reopened := openDB(t, repDir)
	defer reopened.Close()
	assertConverged(t, primary, reopened, col)
}

func TestJournalSegmentResetAndSnapshotResync(t *testing.T) {
	primary := openDB(t, t.TempDir())
	replica := openDB(t, t.TempDir())
	defer primary.Close()
	defer replica.Close()

	col := "queue"
	for i := 0; i < 6; i++ {
		if _, err := primary.Collection(col).InsertOne(Doc{"_id": fmt.Sprintf("job-%d", i), "state": "pending"}); err != nil {
			t.Fatal(err)
		}
	}
	// Reading past the journal's extent signals a reset.
	if _, _, err := primary.JournalSegment(col, 0, primary.JournalSize(col)+100, 0); !errors.Is(err, ErrJournalReset) {
		t.Fatalf("err = %v, want ErrJournalReset", err)
	}

	// Full resync: snapshot + (gen, offset), then incremental from there.
	docs, off, gen := primary.CollectionSnapshot(col)
	if err := replica.RestoreCollection(col, docs); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Collection(col).UpdateOne(Doc{"_id": "job-0"}, Doc{"state": "done"}); err != nil {
		t.Fatal(err)
	}
	shipAll(t, primary, replica, col, gen, off)
	assertConverged(t, primary, replica, col)

	// RestoreCollection is durable: a reopened replica still has it.
	names := replica.CollectionNames()
	sort.Strings(names)
	if len(names) != 1 || names[0] != col {
		t.Fatalf("replica collections = %v", names)
	}
}

// TestJournalSegmentStaleGenerationAfterRegrow is the silent-stall
// regression: a journal reset followed by enough new writes to regrow
// to or past a reader's old offset must still fail that reader with
// ErrJournalReset — a size check alone would serve mid-record bytes the
// replica can never consume, stalling replication forever.
func TestJournalSegmentStaleGenerationAfterRegrow(t *testing.T) {
	primary := openDB(t, t.TempDir())
	replica := openDB(t, t.TempDir())
	defer primary.Close()
	defer replica.Close()

	col := "queue"
	for i := 0; i < 6; i++ {
		if _, err := primary.Collection(col).InsertOne(Doc{"_id": fmt.Sprintf("job-%d", i), "state": "pending"}); err != nil {
			t.Fatal(err)
		}
	}
	off := shipAll(t, primary, replica, col, 0, 0)
	if off == 0 {
		t.Fatal("nothing shipped")
	}

	// Reset the journal (Flush folds it into a snapshot), then regrow it
	// well past the replica's offset with differently-sized records.
	if err := primary.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := primary.Collection(col).InsertOne(Doc{"_id": fmt.Sprintf("regrown-job-%02d", i), "state": "pending", "pad": "xxxxxxxxxxxxxxxx"}); err != nil {
			t.Fatal(err)
		}
	}
	if primary.JournalSize(col) <= off {
		t.Fatalf("journal did not regrow past old offset: %d <= %d", primary.JournalSize(col), off)
	}

	// The stale reader must be told to resync, not fed mid-record bytes.
	if _, _, err := primary.JournalSegment(col, 0, off, 0); !errors.Is(err, ErrJournalReset) {
		t.Fatalf("stale-generation read: err = %v, want ErrJournalReset", err)
	}

	// The resync path converges.
	docs, off2, gen := primary.CollectionSnapshot(col)
	if err := replica.RestoreCollection(col, docs); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Collection(col).InsertOne(Doc{"_id": "post-resync"}); err != nil {
		t.Fatal(err)
	}
	shipAll(t, primary, replica, col, gen, off2)
	assertConverged(t, primary, replica, col)
}

func TestJournalSegmentNotJournaled(t *testing.T) {
	mem, err := open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := mem.JournalSegment("queue", 0, 0, 0); !errors.Is(err, ErrNotJournaled) {
		t.Fatalf("err = %v, want ErrNotJournaled", err)
	}
}

func TestHealth(t *testing.T) {
	db := openDB(t, t.TempDir())
	if err := db.Health(); err != nil {
		t.Fatalf("healthy store reports %v", err)
	}
	if _, err := db.Collection("runs").InsertOne(Doc{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Health(); err == nil {
		t.Fatal("closed store reports healthy")
	}
}
