package database

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"

	"gem5art/internal/database/storage"
)

// Replication hooks: the journal that makes a collection crash-safe
// (journal.go) doubles as a replication log. A primary exposes its
// framed journal bytes through JournalSegment; a standby applies them
// with ApplyJournalSegment, which journals each record locally so the
// replica is itself durable and a broker can recover from it after a
// promotion. CollectionSnapshot/RestoreCollection are the full-resync
// path for when the incremental stream is unusable — first contact, or
// a primary whose journal was reset by compaction.
//
// The contract is byte-offset based and torn-tail tolerant: a segment
// that ends mid-record (a crash or a chaotic network tearing the
// shipment) applies its valid prefix and reports how many bytes were
// consumed; the shipper resumes from that offset, so a torn shipment
// never diverges the replica — it only delays it.

// ErrJournalReset reports that the journal was reset (compaction, Flush,
// or RestoreCollection) since the reader's last segment — the reader's
// generation is stale, so its byte offset no longer names a record
// boundary even if the journal has regrown past it. Incremental shipping
// cannot resume; the reader must fall back to a full snapshot resync.
var ErrJournalReset = errors.New("database: journal reset since last segment; full resync required")

// ErrNotJournaled reports that the collection has no journal to ship —
// the store is in-memory or opened with Options.Journal disabled.
var ErrNotJournaled = errors.New("database: collection is not journaled")

// JournalSegment returns up to max bytes (0 = 1 MiB) of the named
// collection's journal starting at byte offset from, together with the
// offset the next read should start at. An empty segment with
// next == from means the reader is caught up. The read is taken under
// the collection lock, so the returned bytes are a stable prefix of
// whole appended records — any tearing a transport adds downstream is
// the receiver's torn-tail path, not ours.
//
// gen is the journal generation the reader's offset is relative to,
// obtained from CollectionSnapshot. Every journal reset bumps the
// generation, so a stale gen returns ErrJournalReset even when the
// journal has regrown to or past from — offsets from a previous
// generation land mid-record and must never be served. (The counter is
// per-open, not persisted: a reader never outlives the *DB it reads
// from, which holds in-process; a networked reader must resync after a
// primary restart.)
func (db *DB) JournalSegment(collection string, gen uint64, from int64, max int) (data []byte, next int64, err error) {
	if max <= 0 {
		max = 1 << 20
	}
	c := db.collection(collection)
	c.mu.Lock()
	defer c.mu.Unlock()
	var size int64
	var curGen uint64
	if c.journal != nil {
		size = c.journal.size
		curGen = c.journal.gen
	} else if db.dir == "" || !db.opts.Journal {
		return nil, from, ErrNotJournaled
	}
	if gen != curGen || from > size {
		return nil, from, ErrJournalReset
	}
	if from == size {
		return nil, from, nil
	}
	f, err := db.fs().OpenFile(journalPath(db.dir, collection), os.O_RDONLY, 0)
	if err != nil {
		return nil, from, fmt.Errorf("database: journal segment %s: %w", collection, err)
	}
	defer f.Close()
	n := size - from
	if n > int64(max) {
		n = int64(max)
	}
	data = make([]byte, n)
	read, err := f.ReadAt(data, from)
	if err != nil && err != io.EOF {
		return nil, from, fmt.Errorf("database: journal segment %s: %w", collection, err)
	}
	data = data[:read]
	return data, from + int64(read), nil
}

// JournalSize reports the named collection's current journal extent in
// bytes — the replication shipper's lag baseline.
func (db *DB) JournalSize(collection string) int64 {
	c := db.collection(collection)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal == nil {
		return 0
	}
	return c.journal.size
}

// ApplyJournalSegment decodes the framed records in data and applies
// them to the named collection, journaling each locally. It returns the
// number of records applied and the byte length of the valid prefix
// consumed. A segment ending in a torn or corrupt record is not an
// error: the valid prefix is applied and consumed reports where the
// next shipment must resume — truncate-and-resync, the same recovery
// startup replay uses for a crash mid-append.
func (db *DB) ApplyJournalSegment(collection string, data []byte) (applied int, consumed int64, err error) {
	if err := db.Degraded(); err != nil {
		return 0, 0, err
	}
	c := db.collection(collection)
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn tail: resume from consumed
		}
		rec, ok := decodeJournalLine(data[:nl])
		if !ok {
			break // corrupt or half-written record
		}
		// Journal locally before applying: a replica that cannot persist
		// a record must not apply it either, or a post-crash recovery
		// would diverge from what it acknowledged.
		if lerr := c.logRecord(rec); lerr != nil {
			return applied, consumed, lerr
		}
		c.applyRecordLocked(rec)
		applied++
		consumed += int64(nl + 1)
		data = data[nl+1:]
	}
	if applied > 0 && len(c.uniques) > 0 {
		c.rebuildIndexesLocked()
	}
	return applied, consumed, nil
}

// CollectionSnapshot returns deep copies of every document in the named
// collection together with the journal position the snapshot
// corresponds to — generation and byte extent, an atomic basis for a
// full resync: restore the documents, then resume incremental shipping
// from the returned (gen, offset) position.
func (db *DB) CollectionSnapshot(collection string) (docs []Doc, journalSize int64, gen uint64) {
	c := db.collection(collection)
	c.mu.Lock()
	defer c.mu.Unlock()
	docs = make([]Doc, 0, len(c.docs))
	for _, d := range c.docs {
		docs = append(docs, storage.CloneDoc(d))
	}
	if c.journal != nil {
		journalSize = c.journal.size
		gen = c.journal.gen
	}
	return docs, journalSize, gen
}

// RestoreCollection replaces the named collection's contents with deep
// copies of docs — the receiving half of a full resync. The restored
// state is made durable the way compaction is: snapshot written
// atomically, local journal reset, so a replica crash right after a
// resync reloads the restored state, not the pre-resync one.
func (db *DB) RestoreCollection(collection string, docs []Doc) error {
	c := db.collection(collection)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.docs = c.docs[:0]
	c.byID = make(map[string]int, len(docs))
	for _, d := range docs {
		cp := storage.CloneDoc(d)
		id := fmt.Sprint(cp["_id"])
		if pos, ok := c.byID[id]; ok {
			c.docs[pos] = cp
			continue
		}
		c.docs = append(c.docs, cp)
		c.byID[id] = len(c.docs) - 1
		c.bumpNextID(id)
	}
	c.rebuildIndexesLocked()
	if db.dir == "" { // in-memory store: nothing to persist
		return nil
	}
	if err := c.writeSnapshotLocked(); err != nil {
		return fmt.Errorf("database: restore %s: %w", collection, err)
	}
	if c.journal == nil {
		if err := c.ensureJournal(); err != nil {
			return c.db.degrade("journal-open", err)
		}
	}
	if c.journal != nil {
		if err := c.journal.reset(); err != nil {
			return fmt.Errorf("database: restore %s: %w", collection, err)
		}
		dbJournalBytes.With(collection).Set(0)
	}
	return nil
}

// Health reports whether the store can accept reads and writes: nil
// while open and healthy, an error once Close ran or a durability
// failure flipped the store into read-only degraded mode
// (*storage.DegradedError, carrying the failing path and the disk
// error). The status daemon's /healthz turns this into a 503 with the
// reason attached.
func (db *DB) Health() error {
	db.mu.RLock()
	closed, degraded := db.closed, db.degraded
	db.mu.RUnlock()
	if closed {
		return errors.New("database: store is closed")
	}
	if degraded != nil {
		return degraded
	}
	return nil
}
