package database

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestInsertAssignsID(t *testing.T) {
	db := MustOpen("")
	c := db.Collection("artifacts")
	id, err := c.InsertOne(Doc{"name": "gem5"})
	if err != nil {
		t.Fatalf("InsertOne: %v", err)
	}
	if id == "" {
		t.Fatal("expected a generated _id")
	}
	got := c.FindOne(Doc{"_id": id})
	if got == nil || got["name"] != "gem5" {
		t.Fatalf("FindOne by id returned %v", got)
	}
}

func TestInsertPreservesCallerDoc(t *testing.T) {
	db := MustOpen("")
	c := db.Collection("a")
	d := Doc{"k": "v"}
	if _, err := c.InsertOne(d); err != nil {
		t.Fatal(err)
	}
	if _, ok := d["_id"]; ok {
		t.Fatal("InsertOne mutated the caller's document")
	}
	d["k"] = "changed"
	if got := c.FindOne(Doc{"k": "v"}); got == nil {
		t.Fatal("stored document was corrupted by caller mutation")
	}
}

func TestFindEquality(t *testing.T) {
	db := MustOpen("")
	c := db.Collection("runs")
	for i := 0; i < 5; i++ {
		if _, err := c.InsertOne(Doc{"cpu": "timing", "cores": i}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.InsertOne(Doc{"cpu": "o3", "cores": 2}); err != nil {
		t.Fatal(err)
	}
	got := c.Find(Doc{"cpu": "timing"})
	if len(got) != 5 {
		t.Fatalf("Find(cpu=timing) = %d docs, want 5", len(got))
	}
	if n := c.Count(Doc{"cores": 2}); n != 2 {
		t.Fatalf("Count(cores=2) = %d, want 2", n)
	}
}

func TestFindOperators(t *testing.T) {
	db := MustOpen("")
	c := db.Collection("runs")
	for i := 1; i <= 8; i *= 2 {
		if _, err := c.InsertOne(Doc{"cores": i, "status": "done"}); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		name   string
		filter Doc
		want   int
	}{
		{"gt", Doc{"cores": Doc{"$gt": 2}}, 2},
		{"gte", Doc{"cores": Doc{"$gte": 2}}, 3},
		{"lt", Doc{"cores": Doc{"$lt": 8}}, 3},
		{"lte", Doc{"cores": Doc{"$lte": 1}}, 1},
		{"ne", Doc{"cores": Doc{"$ne": 4}}, 3},
		{"in", Doc{"cores": Doc{"$in": []any{1, 8}}}, 2},
		{"exists", Doc{"status": Doc{"$exists": true}}, 4},
		{"notexists", Doc{"missing": Doc{"$exists": false}}, 4},
		{"contains", Doc{"status": Doc{"$contains": "on"}}, 4},
		{"combined", Doc{"cores": Doc{"$gt": 1, "$lt": 8}}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if n := c.Count(tc.filter); n != tc.want {
				t.Errorf("Count(%v) = %d, want %d", tc.filter, n, tc.want)
			}
		})
	}
}

func TestDottedKeys(t *testing.T) {
	db := MustOpen("")
	c := db.Collection("artifacts")
	if _, err := c.InsertOne(Doc{
		"name": "gem5",
		"git":  map[string]any{"url": "https://example.org/gem5", "hash": "440f0bc"},
	}); err != nil {
		t.Fatal(err)
	}
	if got := c.FindOne(Doc{"git.hash": "440f0bc"}); got == nil {
		t.Fatal("dotted-key equality did not match nested document")
	}
	if got := c.FindOne(Doc{"git.hash": "deadbeef"}); got != nil {
		t.Fatal("dotted-key equality matched the wrong value")
	}
}

func TestUniqueIndexRejectsDuplicates(t *testing.T) {
	db := MustOpen("")
	c := db.Collection("artifacts")
	c.CreateUniqueIndex("hash", "name")
	if _, err := c.InsertOne(Doc{"hash": "abc", "name": "gem5"}); err != nil {
		t.Fatal(err)
	}
	_, err := c.InsertOne(Doc{"hash": "abc", "name": "gem5"})
	var dup *ErrDuplicate
	if err == nil {
		t.Fatal("duplicate insert succeeded")
	}
	if !asErr(err, &dup) {
		t.Fatalf("error = %v, want *ErrDuplicate", err)
	}
	// Different hash, same name is fine: a changed file is a new artifact.
	if _, err := c.InsertOne(Doc{"hash": "def", "name": "gem5"}); err != nil {
		t.Fatalf("distinct hash rejected: %v", err)
	}
}

func asErr(err error, target **ErrDuplicate) bool {
	d, ok := err.(*ErrDuplicate)
	if ok {
		*target = d
	}
	return ok
}

func TestUpdateOne(t *testing.T) {
	db := MustOpen("")
	c := db.Collection("runs")
	id, err := c.InsertOne(Doc{"status": "queued"})
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := c.UpdateOne(Doc{"_id": id}, Doc{"status": "running", "host": "sim0"}); err != nil || !ok {
		t.Fatalf("UpdateOne found nothing (ok=%v err=%v)", ok, err)
	}
	got := c.FindOne(Doc{"_id": id})
	if got["status"] != "running" || got["host"] != "sim0" {
		t.Fatalf("after update: %v", got)
	}
	if ok, err := c.UpdateOne(Doc{"_id": "nope"}, Doc{"status": "x"}); err != nil || ok {
		t.Fatalf("UpdateOne matched a nonexistent doc (ok=%v err=%v)", ok, err)
	}
}

func TestDeleteMany(t *testing.T) {
	db := MustOpen("")
	c := db.Collection("runs")
	for i := 0; i < 6; i++ {
		if _, err := c.InsertOne(Doc{"even": i%2 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.DeleteMany(Doc{"even": true}); n != 3 {
		t.Fatalf("DeleteMany removed %d, want 3", n)
	}
	if n := c.Count(nil); n != 3 {
		t.Fatalf("remaining = %d, want 3", n)
	}
}

func TestDistinct(t *testing.T) {
	db := MustOpen("")
	c := db.Collection("runs")
	for _, cpu := range []string{"kvm", "timing", "kvm", "o3", "timing"} {
		if _, err := c.InsertOne(Doc{"cpu": cpu}); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Distinct("cpu", nil)
	if len(got) != 3 {
		t.Fatalf("Distinct = %v, want 3 values", got)
	}
	if got[0] != "kvm" || got[1] != "timing" || got[2] != "o3" {
		t.Fatalf("Distinct order = %v, want first-seen order", got)
	}
}

func TestNumericCrossTypeEquality(t *testing.T) {
	db := MustOpen("")
	c := db.Collection("x")
	if _, err := c.InsertOne(Doc{"n": 8}); err != nil {
		t.Fatal(err)
	}
	// After a JSON round-trip the stored 8 becomes float64(8); both int and
	// float filters must keep matching.
	if c.FindOne(Doc{"n": float64(8)}) == nil {
		t.Fatal("int-stored value did not match float filter")
	}
	if c.FindOne(Doc{"n": int64(8)}) == nil {
		t.Fatal("int-stored value did not match int64 filter")
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	db := MustOpen("")
	fs := db.Files()
	data := bytes.Repeat([]byte("vmlinux-5.4.51 "), 40000) // ~600 KB, >2 chunks
	hash, _ := fs.Put("vmlinux", data)
	if !fs.Exists(hash) {
		t.Fatal("stored file not found by hash")
	}
	meta, ok := fs.Stat(hash)
	if !ok || meta.Length != len(data) {
		t.Fatalf("Stat = %+v ok=%v", meta, ok)
	}
	if meta.Chunks < 3 {
		t.Fatalf("expected >=3 chunks for %d bytes, got %d", len(data), meta.Chunks)
	}
	got, err := fs.Get(hash)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round-tripped content differs")
	}
}

func TestFileStoreDeduplicates(t *testing.T) {
	db := MustOpen("")
	fs := db.Files()
	h1, _ := fs.Put("a", []byte("same-content"))
	h2, _ := fs.Put("b", []byte("same-content"))
	if h1 != h2 {
		t.Fatalf("same content hashed differently: %s vs %s", h1, h2)
	}
	if n := len(fs.List()); n != 1 {
		t.Fatalf("store holds %d files, want 1 (dedup)", n)
	}
	if fs.TotalBytes() != len("same-content") {
		t.Fatalf("TotalBytes = %d", fs.TotalBytes())
	}
}

func TestFileStoreGetMissing(t *testing.T) {
	db := MustOpen("")
	if _, err := db.Files().Get("no-such-hash"); err == nil {
		t.Fatal("Get of missing hash succeeded")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := db.Collection("artifacts")
	if _, err := c.InsertOne(Doc{"name": "gem5", "hash": "abc", "cores": 8}); err != nil {
		t.Fatal(err)
	}
	blob := []byte("disk image bytes")
	h, _ := db.Files().Put("parsec.img", blob)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := db2.Collection("artifacts").FindOne(Doc{"name": "gem5"})
	if got == nil {
		t.Fatal("document lost across reopen")
	}
	if got["cores"] != float64(8) {
		t.Fatalf("cores round-tripped as %v (%T)", got["cores"], got["cores"])
	}
	data, err := db2.Files().Get(h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, blob) {
		t.Fatal("file content lost across reopen")
	}
}

func TestPersistencePreservesUniqueConstraintData(t *testing.T) {
	dir := t.TempDir()
	db := MustOpen(dir)
	c := db.Collection("a")
	c.CreateUniqueIndex("hash")
	if _, err := c.InsertOne(Doc{"hash": "h1"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db2 := MustOpen(dir)
	c2 := db2.Collection("a")
	c2.CreateUniqueIndex("hash")
	if _, err := c2.InsertOne(Doc{"hash": "h1"}); err == nil {
		t.Fatal("duplicate allowed after reload")
	}
}

func TestConcurrentInsertAndQuery(t *testing.T) {
	db := MustOpen("")
	c := db.Collection("runs")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := c.InsertOne(Doc{"g": g, "i": i}); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				c.Find(Doc{"g": g})
			}
		}(g)
	}
	wg.Wait()
	if n := c.Count(nil); n != 400 {
		t.Fatalf("count = %d, want 400", n)
	}
}

func TestCollectionNamesSorted(t *testing.T) {
	db := MustOpen("")
	for _, n := range []string{"zeta", "alpha", "mid"} {
		db.Collection(n)
	}
	got := db.CollectionNames()
	want := []string{"alpha", "mid", "zeta"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("CollectionNames = %v, want %v", got, want)
	}
}
