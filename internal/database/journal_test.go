package database

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// docsByID returns every document keyed by _id, for state comparison.
func docsByID(c Collection) map[string]Doc {
	out := make(map[string]Doc)
	for _, d := range c.Find(nil) {
		out[fmt.Sprint(d["_id"])] = d
	}
	return out
}

// normalize round-trips a state through JSON so int/float64 and
// []string/[]any representation differences cannot mask (or fake) a
// mismatch between a replayed store and a flushed one.
func normalize(t *testing.T, v map[string]Doc) map[string]Doc {
	t.Helper()
	j, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]Doc
	if err := json.Unmarshal(j, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestJournalReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := MustOpen(dir)
	c := db.Collection("runs")
	id1, err := c.InsertOne(Doc{"name": "boot", "ticks": 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.InsertOne(Doc{"name": "npb", "ticks": 200}); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.UpdateOne(Doc{"_id": id1}, Doc{"status": "done"}); err != nil || !ok {
		t.Fatalf("UpdateOne = %v, %v", ok, err)
	}
	if n := c.DeleteMany(Doc{"name": "npb"}); n != 1 {
		t.Fatalf("DeleteMany removed %d", n)
	}
	// Close without Flush: durability must come from the journal alone.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "collections", "runs.jsonl")); !os.IsNotExist(err) {
		t.Fatalf("snapshot written without Flush (err=%v) — replay path not exercised", err)
	}

	db2 := MustOpen(dir)
	defer db2.Close()
	c2 := db2.Collection("runs")
	if n := c2.Count(nil); n != 1 {
		t.Fatalf("replayed %d docs, want 1", n)
	}
	got := c2.FindOne(Doc{"_id": id1})
	if got == nil || got["status"] != "done" {
		t.Fatalf("replayed doc = %v", got)
	}
	// Ids must not be reissued after replay.
	id3, err := c2.InsertOne(Doc{"name": "spec"})
	if err != nil {
		t.Fatal(err)
	}
	if id3 == id1 || id3 == "runs-2" {
		t.Fatalf("reissued id %s after replay", id3)
	}
}

func TestJournalTruncatedTailRecovery(t *testing.T) {
	dir := t.TempDir()
	db := MustOpen(dir)
	c := db.Collection("runs")
	for i := 0; i < 3; i++ {
		if _, err := c.InsertOne(Doc{"seq": i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: cut the last record in half.
	wal := journalPath(dir, "runs")
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, b := range data {
		if b == '\n' {
			lines++
		}
	}
	if lines != 3 {
		t.Fatalf("journal has %d records, want 3", lines)
	}
	if err := os.WriteFile(wal, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	db2 := MustOpen(dir)
	c2 := db2.Collection("runs")
	if n := c2.Count(nil); n != 2 {
		t.Fatalf("replayed %d docs after torn tail, want 2", n)
	}
	// The torn bytes must be gone: new appends start at the last good
	// record, and a further reopen sees a consistent prefix + new ops.
	if _, err := c2.InsertOne(Doc{"seq": 99}); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3 := MustOpen(dir)
	defer db3.Close()
	c3 := db3.Collection("runs")
	if n := c3.Count(nil); n != 3 {
		t.Fatalf("replayed %d docs after recovery append, want 3", n)
	}
	if c3.FindOne(Doc{"seq": 99}) == nil {
		t.Fatal("post-recovery insert lost")
	}
}

// TestJournalReplayMatchesFlush drives an identical randomized op
// sequence into a journaled store (reopened via replay, no Flush) and a
// snapshot-mode store (reopened via Flush), and requires identical
// final states. This is the engine's core equivalence property.
func TestJournalReplayMatchesFlush(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			jDir, sDir := t.TempDir(), t.TempDir()
			jdb := MustOpen(jDir)
			sdb, err := OpenWith(sDir, Options{Journal: false})
			if err != nil {
				t.Fatal(err)
			}
			apply := func(rng *rand.Rand, c Collection) {
				for i := 0; i < 300; i++ {
					switch op := rng.Intn(10); {
					case op < 6:
						if _, err := c.InsertOne(Doc{"k": rng.Intn(40), "v": rng.Float64()}); err != nil {
							t.Fatal(err)
						}
					case op < 9:
						id := fmt.Sprintf("%s-%d", c.Name(), rng.Intn(200)+1)
						if _, err := c.UpdateOne(Doc{"_id": id}, Doc{"v": rng.Float64(), "touched": true}); err != nil {
							t.Fatal(err)
						}
					default:
						c.DeleteMany(Doc{"k": rng.Intn(40)})
					}
				}
			}
			// Same seed, same decisions, same generated values on both stores.
			apply(rand.New(rand.NewSource(seed)), jdb.Collection("ops"))
			apply(rand.New(rand.NewSource(seed)), sdb.Collection("ops"))
			if err := jdb.Close(); err != nil {
				t.Fatal(err)
			}
			if err := sdb.Close(); err != nil {
				t.Fatal(err)
			}

			jdb2 := MustOpen(jDir)
			defer jdb2.Close()
			sdb2 := MustOpen(sDir)
			defer sdb2.Close()
			got := normalize(t, docsByID(jdb2.Collection("ops")))
			want := normalize(t, docsByID(sdb2.Collection("ops")))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("journal replay and snapshot flush diverge:\nreplay: %d docs\nflush:  %d docs", len(got), len(want))
			}
			if len(got) == 0 {
				t.Fatal("degenerate sequence: no documents survived")
			}
		})
	}
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenWith(dir, Options{Journal: true, CompactAfter: 16})
	if err != nil {
		t.Fatal(err)
	}
	c := db.Collection("runs")
	for i := 0; i < 50; i++ {
		if _, err := c.InsertOne(Doc{"seq": i}); err != nil {
			t.Fatal(err)
		}
	}
	db.(*DB).compactWG.Wait()
	snap := filepath.Join(dir, "collections", "runs.jsonl")
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("compaction wrote no snapshot: %v", err)
	}
	fi, err := os.Stat(journalPath(dir, "runs"))
	if err != nil {
		t.Fatal(err)
	}
	// 50 inserts at CompactAfter=16 means the journal was folded into
	// the snapshot at least twice; at most CompactAfter records remain.
	var remaining int
	if data, err := os.ReadFile(journalPath(dir, "runs")); err == nil {
		for _, b := range data {
			if b == '\n' {
				remaining++
			}
		}
	}
	if remaining >= 50 {
		t.Fatalf("journal still holds %d records (size %d) — compaction never ran", remaining, fi.Size())
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := MustOpen(dir)
	defer db2.Close()
	if n := db2.Collection("runs").Count(nil); n != 50 {
		t.Fatalf("snapshot+journal reopen has %d docs, want 50", n)
	}
}

// TestJournalConcurrentMutations hammers one journaled collection from
// many goroutines with a compaction threshold low enough that
// compactions run concurrently with the writes. Run under -race this
// guards the journal/compaction locking.
func TestJournalConcurrentMutations(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenWith(dir, Options{Journal: true, CompactAfter: 32})
	if err != nil {
		t.Fatal(err)
	}
	c := db.Collection("runs")
	const workers, each = 8, 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				id, err := c.InsertOne(Doc{"worker": w, "seq": i})
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := c.UpdateOne(Doc{"_id": id}, Doc{"done": true}); err != nil {
					t.Error(err)
					return
				}
				c.FindOne(Doc{"_id": id})
				c.Count(Doc{"worker": w})
			}
		}()
	}
	wg.Wait()
	if n := c.Count(nil); n != workers*each {
		t.Fatalf("have %d docs, want %d", n, workers*each)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := MustOpen(dir)
	defer db2.Close()
	if n := db2.Collection("runs").Count(Doc{"done": true}); n != workers*each {
		t.Fatalf("reopened store has %d done docs, want %d", n, workers*each)
	}
}

// TestFlushTruncatesJournal: after an explicit Flush the journal is
// empty and the state lives in the snapshot.
func TestFlushTruncatesJournal(t *testing.T) {
	dir := t.TempDir()
	db := MustOpen(dir)
	c := db.Collection("runs")
	for i := 0; i < 10; i++ {
		if _, err := c.InsertOne(Doc{"seq": i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(journalPath(dir, "runs"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("journal holds %d bytes after Flush", fi.Size())
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := MustOpen(dir)
	defer db2.Close()
	var seqs []int
	for _, d := range db2.Collection("runs").Find(nil) {
		seqs = append(seqs, int(d["seq"].(float64)))
	}
	sort.Ints(seqs)
	if len(seqs) != 10 || seqs[0] != 0 || seqs[9] != 9 {
		t.Fatalf("post-flush reopen: %v", seqs)
	}
}
