package database

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gem5art/internal/database/storage"
	"gem5art/internal/faultinject"
)

// openChaos opens a journaled store whose durable writes flow through a
// DiskChaos armed with the given rules.
func openChaos(t *testing.T, dir string, rules ...faultinject.DiskRule) (*DB, *faultinject.DiskChaos) {
	t.Helper()
	dc := faultinject.NewDiskChaos(1, nil, rules...)
	store, err := OpenWith(dir, Options{Journal: true, SyncOnCommit: true, FS: dc})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return store.(*DB), dc
}

// TestJournalFailureNeverAcknowledged is the ISSUE's core acceptance
// criterion: an injected journal append/fsync failure must never be
// acknowledged as a successful commit. The failing operation returns
// *storage.DegradedError, the store flips read-only, and the document
// is absent both in memory and after reopen.
func TestJournalFailureNeverAcknowledged(t *testing.T) {
	dir := t.TempDir()
	db, _ := openChaos(t, dir, faultinject.DiskRule{
		Kind: faultinject.DiskFsyncFail, PathContains: ".wal", After: 2, Count: 1,
	})
	c := db.Collection("runs")
	if _, err := c.InsertOne(Doc{"_id": "r1", "n": 1.0}); err != nil {
		t.Fatalf("first insert should commit: %v", err)
	}
	if _, err := c.InsertOne(Doc{"_id": "r2", "n": 2.0}); err != nil {
		t.Fatalf("second insert should commit: %v", err)
	}
	// Third append hits the fsync fault: the commit must fail typed.
	_, err := c.InsertOne(Doc{"_id": "r3", "n": 3.0})
	var deg *storage.DegradedError
	if !errors.As(err, &deg) {
		t.Fatalf("faulted insert returned %v, want *storage.DegradedError", err)
	}
	if deg.Reason != "journal-sync" {
		t.Fatalf("degraded reason = %q, want journal-sync", deg.Reason)
	}
	// The unacknowledged document is not applied in memory...
	if c.FindOne(Doc{"_id": "r3"}) != nil {
		t.Fatal("unacknowledged insert is visible in memory")
	}
	// ...the store is read-only (even though the fault was Count:1)...
	if _, err := c.InsertOne(Doc{"_id": "r4"}); !errors.As(err, &deg) {
		t.Fatalf("degraded store accepted a later insert: %v", err)
	}
	if err := db.Health(); !errors.As(err, &deg) {
		t.Fatalf("Health() = %v, want degraded", err)
	}
	// ...but reads keep serving.
	if c.FindOne(Doc{"_id": "r1"}) == nil {
		t.Fatal("degraded store stopped serving reads")
	}
	db.Close()

	// Reopen over the same directory with a healthy disk: exactly the
	// acknowledged commits replay.
	store2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer store2.Close()
	c2 := store2.Collection("runs")
	if n := c2.Count(nil); n != 2 {
		t.Fatalf("reopened store has %d docs, want the 2 acknowledged", n)
	}
	if c2.FindOne(Doc{"_id": "r3"}) != nil {
		t.Fatal("unacknowledged insert replayed after reopen")
	}
}

// TestUpdateDeleteRefusedWhenDegraded: every mutating verb fails fast
// once the store is degraded, and none of them mutates memory.
func TestUpdateDeleteRefusedWhenDegraded(t *testing.T) {
	dir := t.TempDir()
	db, _ := openChaos(t, dir, faultinject.DiskRule{
		Kind: faultinject.DiskEIO, Op: faultinject.OpWrite, PathContains: ".wal", After: 1,
	})
	c := db.Collection("runs")
	if _, err := c.InsertOne(Doc{"_id": "r1", "state": "queued"}); err != nil {
		t.Fatalf("seed insert: %v", err)
	}
	if ok, err := c.UpdateOne(Doc{"_id": "r1"}, Doc{"state": "running"}); ok || err == nil {
		t.Fatalf("update under EIO: ok=%v err=%v, want failure", ok, err)
	}
	if d := c.FindOne(Doc{"_id": "r1"}); d["state"] != "queued" {
		t.Fatalf("failed update mutated memory: state=%v", d["state"])
	}
	if n := c.DeleteMany(Doc{"_id": "r1"}); n != 0 {
		t.Fatalf("degraded delete removed %d docs", n)
	}
	if c.FindOne(Doc{"_id": "r1"}) == nil {
		t.Fatal("degraded delete mutated memory")
	}
}

// TestFileStorePutFailFast: a blob whose write-through faults (short
// write, then torn rename on retry paths) stores nothing anywhere and
// returns the typed degraded error.
func TestFileStorePutFailFast(t *testing.T) {
	for _, tc := range []struct {
		name string
		rule faultinject.DiskRule
	}{
		{"short-write", faultinject.DiskRule{Kind: faultinject.DiskShortWrite, PathContains: ".blob"}},
		{"torn-rename", faultinject.DiskRule{Kind: faultinject.DiskTornRename, PathContains: ".blob"}},
		{"enospc", faultinject.DiskRule{Kind: faultinject.DiskENOSPC, PathContains: ".blob"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			db, _ := openChaos(t, dir, tc.rule)
			hash, err := db.Files().Put("vmlinux", []byte("kernel image bytes"))
			var deg *storage.DegradedError
			if !errors.As(err, &deg) || hash != "" {
				t.Fatalf("faulted Put = (%q, %v), want (\"\", DegradedError)", hash, err)
			}
			want := HashBytes([]byte("kernel image bytes"))
			if db.Files().Exists(want) {
				t.Fatal("failed Put left the blob visible in memory")
			}
			if _, err := os.Stat(filepath.Join(dir, "files", want+".blob")); err == nil {
				t.Fatal("failed Put left a final blob on disk")
			}
			db.Close()
		})
	}
}

// TestTmpSweepAtOpen: orphaned *.tmp files stranded by a crash
// mid-rename are removed the next time the store opens, in all three
// durable directories.
func TestTmpSweepAtOpen(t *testing.T) {
	dir := t.TempDir()
	store := MustOpen(dir)
	if _, err := store.Collection("runs").InsertOne(Doc{"_id": "r1"}); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	orphans := []string{
		filepath.Join(dir, "collections", "runs.jsonl.tmp"),
		filepath.Join(dir, "journal", "stray.wal.tmp"),
		filepath.Join(dir, "files", "deadbeef.blob.tmp"),
	}
	for _, p := range orphans {
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte("half-written"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	store2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen with orphans: %v", err)
	}
	defer store2.Close()
	for _, p := range orphans {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived the open-time sweep", p)
		}
	}
	if store2.Collection("runs").FindOne(Doc{"_id": "r1"}) == nil {
		t.Fatal("sweep removed real state")
	}
}

// TestScrubQuarantinesAndRepairs: a blob corrupted on disk is detected
// by the scrubber, quarantined (never served again), and restored from
// a repair source that still holds a good copy.
func TestScrubQuarantinesAndRepairs(t *testing.T) {
	dir := t.TempDir()
	db := MustOpen(dir).(*DB)
	content := []byte("checkpoint payload to corrupt")
	hash, err := db.Files().Put("cpt.1", content)
	if err != nil {
		t.Fatal(err)
	}
	// A healthy standby holding the same content is the repair source.
	standby := MustOpen(t.TempDir())
	if _, err := standby.Files().Put("cpt.1", content); err != nil {
		t.Fatal(err)
	}
	defer standby.Close()

	// Flip bits in the primary's on-disk blob.
	blobPath := filepath.Join(dir, "files", hash+".blob")
	if err := os.WriteFile(blobPath, []byte("BITROT"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep := db.Scrub(FileRepair(standby.Files()))
	if rep.Corrupt != 1 || len(rep.Quarantined) != 1 || rep.Quarantined[0] != hash {
		t.Fatalf("scrub report = %+v, want 1 corrupt/quarantined %s", rep, hash)
	}
	if len(rep.Repaired) != 1 || rep.Repaired[0] != hash {
		t.Fatalf("scrub did not repair from source: %+v", rep)
	}
	// Quarantine dir holds the corrupt bytes for forensics.
	if _, err := os.Stat(filepath.Join(dir, "quarantine", hash+".blob")); err != nil {
		t.Fatalf("quarantined blob missing: %v", err)
	}
	// The repaired blob serves the original content again.
	got, err := db.Files().Get(hash)
	if err != nil || string(got) != string(content) {
		t.Fatalf("repaired Get = (%q, %v)", got, err)
	}
	if raw, err := os.ReadFile(blobPath); err != nil || string(raw) != string(content) {
		t.Fatalf("repaired blob on disk = (%q, %v)", raw, err)
	}
	db.Close()
}

// TestScrubQuarantineWithoutSource: with no repair source the corrupt
// blob is quarantined and simply gone from the store.
func TestScrubQuarantineWithoutSource(t *testing.T) {
	dir := t.TempDir()
	db := MustOpen(dir).(*DB)
	defer db.Close()
	hash, err := db.Files().Put("img", []byte("disk image"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "files", hash+".blob"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := db.Scrub(nil)
	if rep.Corrupt != 1 || len(rep.Repaired) != 0 {
		t.Fatalf("scrub report = %+v", rep)
	}
	if db.Files().Exists(hash) {
		t.Fatal("corrupt blob still served after quarantine")
	}
}

// TestScrubDetectsTornJournal: bytes chopped off an acknowledged
// journal extent are reported as a torn journal.
func TestScrubDetectsTornJournal(t *testing.T) {
	dir := t.TempDir()
	db := MustOpen(dir).(*DB)
	c := db.Collection("runs")
	for i := 0; i < 4; i++ {
		if _, err := c.InsertOne(Doc{"n": float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	wal := filepath.Join(dir, "journal", "runs.wal")
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the middle of the journal (not just the tail).
	mut := []byte(strings.Replace(string(data), "insert", "inzert", 2))
	if err := os.WriteFile(wal, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	rep := db.Scrub(nil)
	if rep.TornJournals != 1 {
		t.Fatalf("scrub saw %d torn journals, want 1 (report %+v)", rep.TornJournals, rep)
	}
	db.Close()
}

// TestCorruptBlobQuarantinedAtLoad: a store whose blob rotted while it
// was closed still opens; the bad blob is quarantined, the rest load.
func TestCorruptBlobQuarantinedAtLoad(t *testing.T) {
	dir := t.TempDir()
	db := MustOpen(dir)
	badHash, err := db.Files().Put("bad", []byte("will rot"))
	if err != nil {
		t.Fatal(err)
	}
	goodHash, err := db.Files().Put("good", []byte("stays intact"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "files", badHash+".blob"), []byte("rotted"), 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("open with corrupt blob should quarantine, not fail: %v", err)
	}
	defer db2.Close()
	if db2.Files().Exists(badHash) {
		t.Fatal("corrupt blob served after reopen")
	}
	if got, err := db2.Files().Get(goodHash); err != nil || string(got) != "stays intact" {
		t.Fatalf("good blob lost: (%q, %v)", got, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", badHash+".blob")); err != nil {
		t.Fatalf("corrupt blob not quarantined: %v", err)
	}
}

// TestSnapshotFaultDegradesCompaction: a snapshot write failing mid-
// compaction degrades the store instead of acknowledging a Flush that
// did not happen.
func TestSnapshotFaultDegradesCompaction(t *testing.T) {
	dir := t.TempDir()
	db, _ := openChaos(t, dir, faultinject.DiskRule{
		Kind: faultinject.DiskENOSPC, Op: faultinject.OpWrite, PathContains: ".jsonl.tmp",
	})
	c := db.Collection("runs")
	if _, err := c.InsertOne(Doc{"_id": "r1"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err == nil {
		t.Fatal("Flush acknowledged success under ENOSPC")
	}
	var deg *storage.DegradedError
	if err := db.Health(); !errors.As(err, &deg) {
		t.Fatalf("Health after failed flush = %v, want degraded", err)
	}
}
