package database

import (
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"
)

// chunkSize mirrors GridFS's default chunk size (255 KiB). Files larger
// than this are split across multiple chunks.
const chunkSize = 255 * 1024

// FileStore stores binary blobs (disk images, kernels, results archives)
// chunked and deduplicated by MD5 hash, mirroring how gem5art stores
// artifact files in MongoDB's GridFS.
type FileStore struct {
	mu    sync.RWMutex
	db    *DB
	metas map[string]*FileMeta // keyed by hash
	data  map[string][][]byte  // hash -> chunks
}

// FileMeta describes a stored file.
type FileMeta struct {
	Name   string
	Hash   string // MD5 of the content, hex-encoded
	Length int
	Chunks int
}

func newFileStore(db *DB) *FileStore {
	return &FileStore{
		db:    db,
		metas: make(map[string]*FileMeta),
		data:  make(map[string][][]byte),
	}
}

// HashBytes returns the hex MD5 of data — the identity used for artifact
// deduplication throughout gem5art.
func HashBytes(data []byte) string {
	sum := md5.Sum(data)
	return hex.EncodeToString(sum[:])
}

// Put stores the file under its content hash. Storing identical content
// twice is a no-op (the paper: a file is uploaded "unless it already
// exists there"). It returns the content hash.
func (fs *FileStore) Put(name string, data []byte) string {
	defer observeOp("file_put", time.Now())
	hash := HashBytes(data)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.metas[hash]; ok {
		return hash
	}
	var chunks [][]byte
	for off := 0; off < len(data); off += chunkSize {
		end := off + chunkSize
		if end > len(data) {
			end = len(data)
		}
		chunk := make([]byte, end-off)
		copy(chunk, data[off:end])
		chunks = append(chunks, chunk)
	}
	fs.metas[hash] = &FileMeta{Name: name, Hash: hash, Length: len(data), Chunks: len(chunks)}
	fs.data[hash] = chunks
	return hash
}

// Get reassembles and returns the file with the given content hash.
func (fs *FileStore) Get(hash string) ([]byte, error) {
	defer observeOp("file_get", time.Now())
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	meta, ok := fs.metas[hash]
	if !ok {
		return nil, fmt.Errorf("database: file %s not found", hash)
	}
	out := make([]byte, 0, meta.Length)
	for _, chunk := range fs.data[hash] {
		out = append(out, chunk...)
	}
	return out, nil
}

// Exists reports whether content with the given hash is stored.
func (fs *FileStore) Exists(hash string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.metas[hash]
	return ok
}

// Stat returns the metadata for a stored file.
func (fs *FileStore) Stat(hash string) (FileMeta, bool) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	m, ok := fs.metas[hash]
	if !ok {
		return FileMeta{}, false
	}
	return *m, true
}

// List returns metadata for every stored file, sorted by name then hash.
func (fs *FileStore) List() []FileMeta {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make([]FileMeta, 0, len(fs.metas))
	for _, m := range fs.metas {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Hash < out[j].Hash
	})
	return out
}

// TotalBytes returns the total stored (deduplicated) content size.
func (fs *FileStore) TotalBytes() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n := 0
	for _, m := range fs.metas {
		n += m.Length
	}
	return n
}
