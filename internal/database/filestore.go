package database

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"gem5art/internal/database/storage"
)

// chunkSize mirrors GridFS's default chunk size (255 KiB). Files larger
// than this are split across multiple in-memory chunks.
const chunkSize = 255 * 1024

// fileStore is the engine's content-addressed blob store. It implements
// storage.FileStore. Blobs are held chunked in memory and — for
// persistent stores — written through to <dir>/files/<hash>.blob as raw
// bytes at Put time. The write-through is fail-fast: a Put whose blob
// cannot be persisted returns *storage.DegradedError and stores
// nothing, so a hash returned by Put always names durable content.
// Blobs written by older versions were base64-encoded; load detects
// and decodes them transparently.
type fileStore struct {
	mu        sync.RWMutex
	db        *DB
	metas     map[string]*FileMeta // keyed by hash
	data      map[string][][]byte  // hash -> chunks
	persisted map[string]bool      // hashes already durable on disk
}

func newFileStore(db *DB) *fileStore {
	return &fileStore{
		db:        db,
		metas:     make(map[string]*FileMeta),
		data:      make(map[string][][]byte),
		persisted: make(map[string]bool),
	}
}

func (fs *fileStore) dir() string {
	if fs.db.dir == "" {
		return ""
	}
	return filepath.Join(fs.db.dir, "files")
}

// Put stores the file under its content hash. Storing identical content
// twice is a no-op (the paper: a file is uploaded "unless it already
// exists there"). It returns the content hash. For persistent stores
// the blob is written through atomically before Put returns; a disk
// failure degrades the store and fails the Put without storing
// anything, in memory or on disk.
func (fs *fileStore) Put(name string, data []byte) (string, error) {
	defer observeOp("file_put", time.Now())
	if err := fs.db.Degraded(); err != nil {
		return "", err
	}
	hash := HashBytes(data)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.metas[hash]; ok {
		return hash, nil
	}
	var chunks [][]byte
	for off := 0; off < len(data); off += chunkSize {
		end := off + chunkSize
		if end > len(data) {
			end = len(data)
		}
		chunk := make([]byte, end-off)
		copy(chunk, data[off:end])
		chunks = append(chunks, chunk)
	}
	meta := &FileMeta{Name: name, Hash: hash, Length: len(data), Chunks: len(chunks)}
	if dir := fs.dir(); dir != "" {
		if err := writeBlob(fs.db.fs(), dir, meta, data); err != nil {
			return "", fs.db.degrade("filestore", err)
		}
		fs.persisted[hash] = true
	}
	fs.metas[hash] = meta
	fs.data[hash] = chunks
	return hash, nil
}

// Get reassembles and returns the file with the given content hash.
func (fs *fileStore) Get(hash string) ([]byte, error) {
	defer observeOp("file_get", time.Now())
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	meta, ok := fs.metas[hash]
	if !ok {
		return nil, fmt.Errorf("database: file %s not found", hash)
	}
	out := make([]byte, 0, meta.Length)
	for _, chunk := range fs.data[hash] {
		out = append(out, chunk...)
	}
	return out, nil
}

// Exists reports whether content with the given hash is stored.
func (fs *fileStore) Exists(hash string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.metas[hash]
	return ok
}

// Stat returns the metadata for a stored file.
func (fs *fileStore) Stat(hash string) (FileMeta, bool) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	m, ok := fs.metas[hash]
	if !ok {
		return FileMeta{}, false
	}
	return *m, true
}

// List returns metadata for every stored file, sorted by name then hash.
func (fs *fileStore) List() []FileMeta {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make([]FileMeta, 0, len(fs.metas))
	for _, m := range fs.metas {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Hash < out[j].Hash
	})
	return out
}

// TotalBytes returns the total stored (deduplicated) content size.
func (fs *fileStore) TotalBytes() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n := 0
	for _, m := range fs.metas {
		n += m.Length
	}
	return n
}

// flushAll persists any blobs not yet durable (stored before the Put
// write-through existed, or restored by a repair).
func (fs *fileStore) flushAll() error {
	dir := fs.dir()
	if dir == "" {
		return nil
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var err error
	for hash, meta := range fs.metas {
		if fs.persisted[hash] {
			continue
		}
		var data []byte
		for _, chunk := range fs.data[hash] {
			data = append(data, chunk...)
		}
		if werr := writeBlob(fs.db.fs(), dir, meta, data); werr != nil {
			if err == nil {
				err = werr
			}
			continue
		}
		fs.persisted[hash] = true
	}
	return err
}

// evict drops a blob from the in-memory maps — the quarantine path:
// a corrupt blob must never be served again from memory or disk.
func (fs *fileStore) evict(hash string) {
	fs.mu.Lock()
	delete(fs.metas, hash)
	delete(fs.data, hash)
	delete(fs.persisted, hash)
	fs.mu.Unlock()
}

// hashes returns every stored content hash, for the scrubber's walk.
func (fs *fileStore) hashes() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make([]string, 0, len(fs.metas))
	for h := range fs.metas {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// writeBlob writes a blob (raw bytes, atomically via tmp+rename) and
// then its metadata. The blob lands first so a *.meta file always
// refers to complete content.
func writeBlob(fsys storage.FS, dir string, meta *FileMeta, data []byte) error {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	final := filepath.Join(dir, meta.Hash+".blob")
	tmp := final + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, final); err != nil {
		return err
	}
	mj, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	return fsys.WriteFile(filepath.Join(dir, meta.Hash+".meta"), mj, 0o644)
}

// load restores blobs from dir. Current-format blobs are raw bytes;
// blobs written by older versions are base64 text. The two are told
// apart by hashing: content is stored under its own MD5, so the raw
// bytes match meta.Hash iff the blob is current-format.
func (fs *fileStore) load(dir string) error {
	fsys := fs.db.fs()
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".meta") {
			continue
		}
		mj, err := fsys.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		var meta FileMeta
		if err := json.Unmarshal(mj, &meta); err != nil {
			return err
		}
		raw, err := fsys.ReadFile(filepath.Join(dir, meta.Hash+".blob"))
		if err != nil {
			return err
		}
		data := raw
		if storage.HashBytes(raw) != meta.Hash {
			dec, derr := base64.StdEncoding.DecodeString(strings.TrimSpace(string(raw)))
			if derr != nil || storage.HashBytes(dec) != meta.Hash {
				// Corrupt content (torn write, bit rot). Quarantine it
				// rather than refusing to open the store: the blob is
				// never served, and Scrub can later repair it from a
				// replica.
				fs.db.quarantineBlob(meta.Hash)
				continue
			}
			data = dec
		}
		var chunks [][]byte
		for off := 0; off < len(data); off += chunkSize {
			end := off + chunkSize
			if end > len(data) {
				end = len(data)
			}
			chunks = append(chunks, data[off:end:end])
		}
		m := meta
		fs.mu.Lock()
		fs.metas[meta.Hash] = &m
		fs.data[meta.Hash] = chunks
		// Already durable — a legacy base64 blob stays base64 on disk
		// (reads handle it) rather than being rewritten on every open.
		fs.persisted[meta.Hash] = true
		fs.mu.Unlock()
	}
	return nil
}
