package database

import (
	"errors"
	"fmt"
	"testing"
)

func TestIndexedFindOne(t *testing.T) {
	db := MustOpen("")
	c := db.Collection("artifacts")
	c.CreateUniqueIndex("hash")
	for i := 0; i < 100; i++ {
		if _, err := c.InsertOne(Doc{"hash": fmt.Sprintf("h%02d", i), "size": i}); err != nil {
			t.Fatal(err)
		}
	}
	got := c.FindOne(Doc{"hash": "h42"})
	if got == nil || got["size"] != 42 {
		t.Fatalf("indexed FindOne = %v", got)
	}
	if c.FindOne(Doc{"hash": "h99x"}) != nil {
		t.Fatal("indexed FindOne matched a missing key")
	}
	// The index answers the lookup, but extra filter keys — including
	// operator expressions — must still be verified on the candidate.
	if d := c.FindOne(Doc{"hash": "h42", "size": Doc{"$gte": 42}}); d == nil {
		t.Fatal("index candidate rejected despite matching extra filter")
	}
	if d := c.FindOne(Doc{"hash": "h42", "size": Doc{"$gt": 42}}); d != nil {
		t.Fatalf("index candidate %v passed a failing extra filter", d)
	}
	// An operator expression on the indexed key itself cannot use the
	// hash index and must fall back to a scan — and still be correct.
	if n := c.Count(Doc{"hash": Doc{"$in": []any{"h01", "h02", "nope"}}}); n != 2 {
		t.Fatalf("operator filter on indexed key counted %d, want 2", n)
	}
}

func TestIDLookup(t *testing.T) {
	db := MustOpen("")
	c := db.Collection("runs")
	var ids []string
	for i := 0; i < 50; i++ {
		id, err := c.InsertOne(Doc{"seq": i})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if d := c.FindOne(Doc{"_id": ids[7]}); d == nil || d["seq"] != 7 {
		t.Fatalf("_id lookup = %v", d)
	}
	if c.FindOne(Doc{"_id": "runs-9999"}) != nil {
		t.Fatal("_id lookup matched a missing id")
	}
	if n := c.Count(Doc{"_id": ids[3]}); n != 1 {
		t.Fatalf("_id Count = %d", n)
	}
	if got := c.Find(Doc{"_id": ids[3], "seq": 4}); got != nil {
		t.Fatalf("_id candidate %v passed a failing extra filter", got)
	}
}

func TestUpdateOneRespectsUniqueIndex(t *testing.T) {
	db := MustOpen("")
	c := db.Collection("artifacts")
	c.CreateUniqueIndex("hash")
	idA, err := c.InsertOne(Doc{"hash": "aaa", "name": "a"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.InsertOne(Doc{"hash": "bbb", "name": "b"}); err != nil {
		t.Fatal(err)
	}
	ok, err := c.UpdateOne(Doc{"_id": idA}, Doc{"hash": "bbb"})
	var dup *ErrDuplicate
	if !errors.As(err, &dup) {
		t.Fatalf("UpdateOne onto a taken key = (%v, %v), want *ErrDuplicate", ok, err)
	}
	if d := c.FindOne(Doc{"_id": idA}); d["hash"] != "aaa" {
		t.Fatalf("rejected update mutated the document: %v", d)
	}
	// Updating a doc onto its own key (no-op rekey) must succeed.
	if ok, err := c.UpdateOne(Doc{"_id": idA}, Doc{"hash": "aaa", "name": "a2"}); err != nil || !ok {
		t.Fatalf("self-rekey update = (%v, %v)", ok, err)
	}
	// A legal rekey frees the old key and claims the new one.
	if ok, err := c.UpdateOne(Doc{"_id": idA}, Doc{"hash": "ccc"}); err != nil || !ok {
		t.Fatalf("rekey update = (%v, %v)", ok, err)
	}
	if _, err := c.InsertOne(Doc{"hash": "aaa"}); err != nil {
		t.Fatalf("freed key still held: %v", err)
	}
	if _, err := c.InsertOne(Doc{"hash": "ccc"}); err == nil {
		t.Fatal("claimed key not enforced")
	}
	if d := c.FindOne(Doc{"hash": "ccc"}); d == nil || d["_id"] != idA {
		t.Fatalf("index lookup after rekey = %v", d)
	}
}

func TestIndexSurvivesDeletions(t *testing.T) {
	db := MustOpen("")
	c := db.Collection("artifacts")
	c.CreateUniqueIndex("hash")
	for i := 0; i < 20; i++ {
		if _, err := c.InsertOne(Doc{"hash": fmt.Sprintf("h%d", i), "even": i%2 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.DeleteMany(Doc{"even": true}); n != 10 {
		t.Fatalf("deleted %d", n)
	}
	// Positions shifted; indexed lookups must still land on the right docs.
	for i := 0; i < 20; i++ {
		d := c.FindOne(Doc{"hash": fmt.Sprintf("h%d", i)})
		if i%2 == 0 && d != nil {
			t.Fatalf("deleted doc still indexed: %v", d)
		}
		if i%2 == 1 && (d == nil || d["hash"] != fmt.Sprintf("h%d", i)) {
			t.Fatalf("surviving doc h%d lookup = %v", i, d)
		}
	}
	// Deleted keys are reclaimable.
	if _, err := c.InsertOne(Doc{"hash": "h0"}); err != nil {
		t.Fatal(err)
	}
}

func TestDocumentsAreDeepCopied(t *testing.T) {
	db := MustOpen("")
	c := db.Collection("runs")
	orig := Doc{"params": map[string]any{"cpu": "timing"}, "tags": []any{"boot"}}
	id, err := c.InsertOne(orig)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's document after insert must not reach the store.
	orig["params"].(map[string]any)["cpu"] = "atomic"
	orig["tags"].([]any)[0] = "hacked"
	got := c.FindOne(Doc{"_id": id})
	if got["params"].(map[string]any)["cpu"] != "timing" {
		t.Fatal("insert shared nested map with caller")
	}
	if got["tags"].([]any)[0] != "boot" {
		t.Fatal("insert shared nested slice with caller")
	}
	// Mutating a query result must not reach the store either.
	got["params"].(map[string]any)["cpu"] = "o3"
	if c.FindOne(Doc{"_id": id})["params"].(map[string]any)["cpu"] != "timing" {
		t.Fatal("query result shared nested map with store")
	}
	// And the set document passed to UpdateOne is isolated too.
	set := Doc{"meta": map[string]any{"host": "sim0"}}
	if ok, err := c.UpdateOne(Doc{"_id": id}, set); err != nil || !ok {
		t.Fatalf("UpdateOne = (%v, %v)", ok, err)
	}
	set["meta"].(map[string]any)["host"] = "evil"
	if c.FindOne(Doc{"_id": id})["meta"].(map[string]any)["host"] != "sim0" {
		t.Fatal("UpdateOne shared the set document with caller")
	}
}
