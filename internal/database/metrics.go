package database

import (
	"time"

	"gem5art/internal/telemetry"
)

// Per-operation latency histograms for the embedded database, labeled
// by operation. Buckets are FastBuckets (10µs..100ms): every operation
// is an in-memory scan or a local file write, so the default
// request-latency buckets would collapse everything into the first bin.
var dbOpDuration = telemetry.Default.HistogramVec("gem5art_db_op_duration_seconds",
	"latency of embedded-database operations by kind",
	telemetry.FastBuckets, "op")

// observeOp records one operation's latency; use as
// `defer observeOp("find", time.Now())`.
func observeOp(op string, start time.Time) {
	dbOpDuration.With(op).Observe(time.Since(start).Seconds())
}

// Journal and index health, surfaced through /metrics so a long sweep's
// storage behavior (journal growth, compaction cadence, replay cost,
// scan avoidance) is observable without instrumenting the client.
var (
	dbJournalRecords = telemetry.Default.CounterVec("gem5art_db_journal_records_total",
		"journal records appended, by operation kind", "op")
	dbJournalBytes = telemetry.Default.GaugeVec("gem5art_db_journal_bytes",
		"current journal size in bytes, by collection", "collection")
	dbCompactions = telemetry.Default.CounterVec("gem5art_db_compactions_total",
		"journal compactions folded into snapshots, by collection", "collection")
	dbReplaySeconds = telemetry.Default.Gauge("gem5art_db_replay_seconds",
		"wall time of the last database open, including journal replay")
	dbReplayedRecords = telemetry.Default.Counter("gem5art_db_replayed_records_total",
		"journal records replayed at startup")
	dbCollectionReplaySeconds = telemetry.Default.GaugeVec("gem5art_db_collection_replay_seconds",
		"journal replay time of the last open, by collection", "collection")
	dbIndexLookups = telemetry.Default.CounterVec("gem5art_db_index_lookups_total",
		"queries answered from a hash index, by outcome", "result")
	dbFullScans = telemetry.Default.Counter("gem5art_db_full_scans_total",
		"queries answered by scanning the collection")
)

// countIndexLookup records one index-served query.
func countIndexLookup(hit bool) {
	if hit {
		dbIndexLookups.With("hit").Inc()
	} else {
		dbIndexLookups.With("miss").Inc()
	}
}
