package database

import (
	"time"

	"gem5art/internal/telemetry"
)

// Per-operation latency histograms for the embedded database, labeled
// by operation. Buckets are FastBuckets (10µs..100ms): every operation
// is an in-memory scan or a local file write, so the default
// request-latency buckets would collapse everything into the first bin.
var dbOpDuration = telemetry.Default.HistogramVec("gem5art_db_op_duration_seconds",
	"latency of embedded-database operations by kind",
	telemetry.FastBuckets, "op")

// observeOp records one operation's latency; use as
// `defer observeOp("find", time.Now())`.
func observeOp(op string, start time.Time) {
	dbOpDuration.With(op).Observe(time.Since(start).Seconds())
}
