package database

import (
	"time"

	"gem5art/internal/telemetry"
)

// Per-operation latency histograms for the embedded database, labeled
// by operation. Buckets are FastBuckets (10µs..100ms): every operation
// is an in-memory scan or a local file write, so the default
// request-latency buckets would collapse everything into the first bin.
var dbOpDuration = telemetry.Default.HistogramVec("gem5art_db_op_duration_seconds",
	"latency of embedded-database operations by kind",
	telemetry.FastBuckets, "op")

// observeOp records one operation's latency; use as
// `defer observeOp("find", time.Now())`.
func observeOp(op string, start time.Time) {
	dbOpDuration.With(op).Observe(time.Since(start).Seconds())
}

// Journal and index health, surfaced through /metrics so a long sweep's
// storage behavior (journal growth, compaction cadence, replay cost,
// scan avoidance) is observable without instrumenting the client.
var (
	dbJournalRecords = telemetry.Default.CounterVec("gem5art_db_journal_records_total",
		"journal records appended, by operation kind", "op")
	dbJournalBytes = telemetry.Default.GaugeVec("gem5art_db_journal_bytes",
		"current journal size in bytes, by collection", "collection")
	dbCompactions = telemetry.Default.CounterVec("gem5art_db_compactions_total",
		"journal compactions folded into snapshots, by collection", "collection")
	dbReplaySeconds = telemetry.Default.Gauge("gem5art_db_replay_seconds",
		"wall time of the last database open, including journal replay")
	dbReplayedRecords = telemetry.Default.Counter("gem5art_db_replayed_records_total",
		"journal records replayed at startup")
	dbCollectionReplaySeconds = telemetry.Default.GaugeVec("gem5art_db_collection_replay_seconds",
		"journal replay time of the last open, by collection", "collection")
	dbIndexLookups = telemetry.Default.CounterVec("gem5art_db_index_lookups_total",
		"queries answered from a hash index, by outcome", "result")
	dbFullScans = telemetry.Default.Counter("gem5art_db_full_scans_total",
		"queries answered by scanning the collection")
)

// Disk-fault containment: degraded-mode state and the integrity
// scrubber's findings, so an operator sees a store that went read-only
// — or is quietly quarantining bit rot — on /metrics before a tenant
// notices a 503.
var (
	dbDegraded = telemetry.Default.Gauge("gem5art_db_degraded",
		"1 when the store is in read-only degraded mode after a durability failure")
	dbDegradedTotal = telemetry.Default.CounterVec("gem5art_db_degraded_total",
		"durability failures that flipped a store read-only, by failing path", "reason")
	dbTmpSwept = telemetry.Default.Counter("gem5art_db_tmp_swept_total",
		"orphaned .tmp files removed at startup (crash mid-compaction or mid-rename)")
	scrubRuns = telemetry.Default.Counter("gem5art_scrub_runs_total",
		"integrity scrub passes completed")
	scrubScanned = telemetry.Default.Counter("gem5art_scrub_blobs_scanned_total",
		"blobs re-read and hash-verified by the scrubber")
	scrubCorrupt = telemetry.Default.CounterVec("gem5art_scrub_corrupt_total",
		"corrupt items found by the scrubber, by kind", "kind")
	scrubQuarantined = telemetry.Default.Counter("gem5art_scrub_quarantined_total",
		"corrupt blobs moved to the quarantine directory")
	scrubRepaired = telemetry.Default.Counter("gem5art_scrub_repaired_total",
		"quarantined blobs restored from a repair source")
	scrubLastUnix = telemetry.Default.Gauge("gem5art_scrub_last_run_unix",
		"unix time of the last completed scrub pass")
)

// countIndexLookup records one index-served query.
func countIndexLookup(hit bool) {
	if hit {
		dbIndexLookups.With("hit").Inc()
	} else {
		dbIndexLookups.With("miss").Inc()
	}
}
