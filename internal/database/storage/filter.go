package storage

import (
	"strings"
)

// Matches reports whether document d satisfies filter. Filter semantics
// are the MongoDB subset gem5art uses:
//
//   - {"k": v}            — equality (v may be a nested Doc for exact match)
//   - {"a.b": v}          — dotted keys traverse nested documents
//   - {"k": {"$gt": v}}   — comparison operators $gt, $gte, $lt, $lte, $ne
//   - {"k": {"$in": [..]}} — membership
//   - {"k": {"$exists": b}} — field presence
//   - {"k": {"$contains": s}} — substring match on string fields
//
// Multiple filter entries are ANDed. Every engine must implement
// exactly these semantics; the function is shared so they cannot drift.
func Matches(d Doc, filter Doc) bool {
	for k, want := range filter {
		got, ok := Lookup(d, k)
		if ops, isOps := OperatorDoc(want); isOps {
			if !matchOps(got, ok, ops) {
				return false
			}
			continue
		}
		if !ok || !ValuesEqual(got, want) {
			return false
		}
	}
	return true
}

// OperatorDoc reports whether v is a document whose keys are all
// operators (begin with '$'), returning it as a Doc when so. Engines
// use it to decide whether a filter entry is a plain equality (index
// eligible) or an operator expression (scan only).
func OperatorDoc(v any) (Doc, bool) {
	m, ok := v.(map[string]any)
	if !ok || len(m) == 0 {
		return nil, false
	}
	for k := range m {
		if !strings.HasPrefix(k, "$") {
			return nil, false
		}
	}
	return m, true
}

func matchOps(got any, present bool, ops Doc) bool {
	for op, arg := range ops {
		switch op {
		case "$exists":
			want, _ := arg.(bool)
			if present != want {
				return false
			}
		case "$ne":
			if present && ValuesEqual(got, arg) {
				return false
			}
		case "$in":
			if !present {
				return false
			}
			items, ok := arg.([]any)
			if !ok {
				return false
			}
			found := false
			for _, it := range items {
				if ValuesEqual(got, it) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		case "$gt", "$gte", "$lt", "$lte":
			if !present {
				return false
			}
			cmp, ok := CompareValues(got, arg)
			if !ok {
				return false
			}
			switch op {
			case "$gt":
				if cmp <= 0 {
					return false
				}
			case "$gte":
				if cmp < 0 {
					return false
				}
			case "$lt":
				if cmp >= 0 {
					return false
				}
			case "$lte":
				if cmp > 0 {
					return false
				}
			}
		case "$contains":
			s, sok := got.(string)
			sub, aok := arg.(string)
			if !present || !sok || !aok || !strings.Contains(s, sub) {
				return false
			}
		default:
			return false // unknown operator matches nothing
		}
	}
	return true
}

// Lookup resolves a possibly dotted key against a document.
func Lookup(d Doc, key string) (any, bool) {
	parts := strings.Split(key, ".")
	var cur any = map[string]any(d)
	for _, p := range parts {
		m, ok := cur.(map[string]any)
		if !ok {
			return nil, false
		}
		cur, ok = m[p]
		if !ok {
			return nil, false
		}
	}
	return cur, true
}

// ValuesEqual compares two document values, treating all numeric types
// as comparable (JSON round-trips turn ints into float64).
func ValuesEqual(a, b any) bool {
	if af, aok := ToFloat(a); aok {
		bf, bok := ToFloat(b)
		return bok && af == bf
	}
	switch av := a.(type) {
	case string:
		bv, ok := b.(string)
		return ok && av == bv
	case bool:
		bv, ok := b.(bool)
		return ok && av == bv
	case nil:
		return b == nil
	case []any:
		bv, ok := b.([]any)
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if !ValuesEqual(av[i], bv[i]) {
				return false
			}
		}
		return true
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok || len(av) != len(bv) {
			return false
		}
		for k, v := range av {
			bvv, ok := bv[k]
			if !ok || !ValuesEqual(v, bvv) {
				return false
			}
		}
		return true
	}
	return false
}

// CompareValues orders two values when they are both numbers or both
// strings. ok is false for incomparable values.
func CompareValues(a, b any) (cmp int, ok bool) {
	if af, aok := ToFloat(a); aok {
		bf, bok := ToFloat(b)
		if !bok {
			return 0, false
		}
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
	as, aok := a.(string)
	bs, bok := b.(string)
	if aok && bok {
		return strings.Compare(as, bs), true
	}
	return 0, false
}

// ToFloat widens any numeric document value to float64.
func ToFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case float32:
		return float64(n), true
	case int:
		return float64(n), true
	case int8:
		return float64(n), true
	case int16:
		return float64(n), true
	case int32:
		return float64(n), true
	case int64:
		return float64(n), true
	case uint:
		return float64(n), true
	case uint8:
		return float64(n), true
	case uint16:
		return float64(n), true
	case uint32:
		return float64(n), true
	case uint64:
		return float64(n), true
	}
	return 0, false
}
