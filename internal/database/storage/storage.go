// Package storage defines the contract every gem5art storage engine
// satisfies: a Store of named Collections of JSON-like documents plus a
// content-addressed FileStore for large blobs. The rest of the system —
// artifacts, runs, launch, experiments, analysis, the status daemon —
// programs against these interfaces only, so engines (the embedded
// in-memory engine, its journaled durability path, or a future sharded
// or remote backend) can be swapped without touching consumers.
//
// The package also owns the pieces of the contract that must behave
// identically across engines: the document type, the filter semantics
// (Matches), query refinement (FindOptions), and deep-copy helpers that
// keep stored documents isolated from caller-held ones.
package storage

import (
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"strings"
)

// Doc is a single document: a JSON-like map from field names to values.
// Nested documents are Doc or map[string]any; arrays are []any.
type Doc = map[string]any

// Store is a database instance: a namespace of collections plus a file
// store. Implementations must be safe for concurrent use.
type Store interface {
	// Collection returns the named collection, creating it if necessary.
	Collection(name string) Collection
	// CollectionNames returns the names of all collections in sorted order.
	CollectionNames() []string
	// Files returns the store's file store.
	Files() FileStore
	// Flush forces everything to durable storage (a no-op for purely
	// in-memory engines). Journaled engines compact here.
	Flush() error
	// Close releases the store, making its state durable first.
	Close() error
}

// Collection is an ordered set of documents with optional unique
// indexes. Documents returned by queries are deep copies: callers may
// mutate them freely without corrupting the store, and vice versa.
type Collection interface {
	// Name returns the collection name.
	Name() string
	// CreateUniqueIndex declares that the combination of the given keys
	// must be unique across the collection. Engines use the declaration
	// both to reject duplicates (*ErrDuplicate) and to serve equality
	// lookups on exactly these keys without scanning.
	CreateUniqueIndex(keys ...string)
	// InsertOne inserts a deep copy of d, assigning an "_id" if absent,
	// and returns the id.
	InsertOne(d Doc) (string, error)
	// InsertMany inserts documents in order, stopping at the first error.
	InsertMany(ds []Doc) error
	// Find returns copies of all documents matching filter, in insertion
	// order. A nil or empty filter matches every document.
	Find(filter Doc) []Doc
	// FindOne returns the first matching document, or nil.
	FindOne(filter Doc) Doc
	// FindWith returns matching documents refined by opts.
	FindWith(filter Doc, opts FindOptions) []Doc
	// Count returns the number of matching documents.
	Count(filter Doc) int
	// UpdateOne merges set into the first document matching filter. It
	// reports whether a document matched; a merge that would violate a
	// unique index is rejected with *ErrDuplicate and leaves the
	// document unchanged.
	UpdateOne(filter, set Doc) (bool, error)
	// DeleteMany removes all matching documents and returns how many
	// were removed.
	DeleteMany(filter Doc) int
	// Distinct returns the distinct values of key across matching
	// documents, in first-seen order.
	Distinct(key string, filter Doc) []any
	// AggregateKey summarizes the numeric values of key over matching
	// documents; non-numeric and missing values are skipped.
	AggregateKey(filter Doc, key string) Aggregate
}

// FileStore stores binary blobs (disk images, kernels, results
// archives) deduplicated by content hash, mirroring gem5art's use of
// MongoDB GridFS.
type FileStore interface {
	// Put stores the file under its content hash and returns the hash.
	// Storing identical content twice is a no-op. A durable engine that
	// cannot persist the blob fails the Put (typically with
	// *DegradedError) instead of acknowledging content it may lose.
	Put(name string, data []byte) (string, error)
	// Get reassembles and returns the file with the given content hash.
	Get(hash string) ([]byte, error)
	// Exists reports whether content with the given hash is stored.
	Exists(hash string) bool
	// Stat returns the metadata for a stored file.
	Stat(hash string) (FileMeta, bool)
	// List returns metadata for every stored file, sorted by name then
	// hash.
	List() []FileMeta
	// TotalBytes returns the total stored (deduplicated) content size.
	TotalBytes() int
}

// FileMeta describes a stored file.
type FileMeta struct {
	Name   string
	Hash   string // MD5 of the content, hex-encoded
	Length int
	Chunks int
}

// ErrDuplicate is returned when an insert or update violates a unique
// index.
type ErrDuplicate struct {
	Collection string
	Keys       []string
}

func (e *ErrDuplicate) Error() string {
	return fmt.Sprintf("database: duplicate document in %s on index (%s)",
		e.Collection, strings.Join(e.Keys, ","))
}

// HashBytes returns the hex MD5 of data — the identity used for
// artifact deduplication throughout gem5art.
func HashBytes(data []byte) string {
	sum := md5.Sum(data)
	return hex.EncodeToString(sum[:])
}

// CloneDoc returns a deep copy of d: nested maps and slices are copied
// recursively so no mutable state is shared between the original and
// the copy.
func CloneDoc(d Doc) Doc {
	if d == nil {
		return nil
	}
	cp := make(Doc, len(d))
	for k, v := range d {
		cp[k] = CloneValue(v)
	}
	return cp
}

// CloneValue deep-copies a document value. Scalars are returned as-is;
// maps and slices are copied recursively.
func CloneValue(v any) any {
	switch t := v.(type) {
	case map[string]any:
		return CloneDoc(t)
	case []any:
		cp := make([]any, len(t))
		for i, e := range t {
			cp[i] = CloneValue(e)
		}
		return cp
	case []string:
		return append([]string(nil), t...)
	case []byte:
		return append([]byte(nil), t...)
	default:
		return v
	}
}
