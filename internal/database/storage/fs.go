package storage

import (
	"io"
	"os"
)

// FS is the slice of the filesystem a storage engine needs. The
// embedded engine threads every durable-path syscall — journal
// appends, snapshot and blob tmp+rename writes, fsyncs, startup reads
// — through this interface so fault-injection harnesses
// (faultinject.DiskChaos) can interpose deterministic disk failures:
// EIO, ENOSPC, short writes, fsync failures, torn renames, and
// crash-point truncation.
//
// The default implementation is OSFS, a thin veneer over package os.
type FS interface {
	// MkdirAll creates a directory path along with any necessary parents.
	MkdirAll(path string, perm os.FileMode) error
	// OpenFile is the generalized open call (os.OpenFile semantics).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove removes the named file.
	Remove(name string) error
	// ReadFile reads the whole named file.
	ReadFile(name string) ([]byte, error)
	// WriteFile writes data to the named file, creating it if necessary.
	WriteFile(name string, data []byte, perm os.FileMode) error
	// ReadDir reads the named directory, returning its entries sorted.
	ReadDir(name string) ([]os.DirEntry, error)
}

// File is the open-file surface the engine uses: sequential and random
// reads, appends, truncation, and — critically for durability — Sync.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Closer
	Seek(offset int64, whence int) (int64, error)
	Sync() error
	Truncate(size int64) error
}

// OSFS is the real filesystem.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
