package storage

import "fmt"

// DegradedError reports that a store has entered read-only degraded
// mode: a durability operation (journal append, journal fsync,
// compaction, snapshot, or blob write-through) failed, so the engine
// refuses further mutations rather than acknowledge writes it cannot
// make durable. Reads keep working from memory. The error is returned
// by the mutation that triggered degradation and by every mutation
// after it, and surfaces through Store health checks until an operator
// repairs the disk and reopens the store.
type DegradedError struct {
	Reason string // which durability path failed: "journal-append", "journal-sync", "compaction", "snapshot", "filestore", "journal-open"
	Err    error  // the underlying disk error
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("storage: degraded (read-only): %s: %v", e.Reason, e.Err)
}

func (e *DegradedError) Unwrap() error { return e.Err }
