package storage

import "sort"

// FindOptions refines a query: sort order, offset, limit, and field
// projection — the cursor modifiers gem5art's Jupyter analyses lean on.
type FindOptions struct {
	// SortBy orders results by this (possibly dotted) key.
	SortBy string
	// Descending reverses the sort order.
	Descending bool
	// Skip drops the first N matches.
	Skip int
	// Limit caps the number of returned documents (0 = no cap).
	Limit int
	// Fields, when non-empty, projects each document to these keys
	// (plus "_id").
	Fields []string
}

// ApplyFindOptions refines an already-materialized result set. Engines
// share it so sort/skip/limit/projection behave identically everywhere.
// The input slice is modified in place (sorting) and sliced.
func ApplyFindOptions(docs []Doc, opts FindOptions) []Doc {
	if opts.SortBy != "" {
		sort.SliceStable(docs, func(i, j int) bool {
			av, aok := Lookup(docs[i], opts.SortBy)
			bv, bok := Lookup(docs[j], opts.SortBy)
			if aok != bok {
				// Present values sort before missing ones.
				less := aok
				if opts.Descending {
					return !less
				}
				return less
			}
			cmp, ok := CompareValues(av, bv)
			if !ok {
				return false
			}
			if opts.Descending {
				return cmp > 0
			}
			return cmp < 0
		})
	}
	if opts.Skip > 0 {
		if opts.Skip >= len(docs) {
			return nil
		}
		docs = docs[opts.Skip:]
	}
	if opts.Limit > 0 && opts.Limit < len(docs) {
		docs = docs[:opts.Limit]
	}
	if len(opts.Fields) > 0 {
		projected := make([]Doc, len(docs))
		for i, d := range docs {
			p := Doc{}
			if id, ok := d["_id"]; ok {
				p["_id"] = id
			}
			for _, f := range opts.Fields {
				if v, ok := Lookup(d, f); ok {
					p[f] = v
				}
			}
			projected[i] = p
		}
		docs = projected
	}
	return docs
}

// Aggregate computes a numeric summary of one key across documents.
type Aggregate struct {
	Count int
	Sum   float64
	Min   float64
	Max   float64
}

// Mean returns Sum/Count (0 for empty).
func (a Aggregate) Mean() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / float64(a.Count)
}

// AggregateDocs summarizes the numeric values of key over docs;
// non-numeric and missing values are skipped.
func AggregateDocs(docs []Doc, key string) Aggregate {
	var agg Aggregate
	for _, d := range docs {
		v, ok := Lookup(d, key)
		if !ok {
			continue
		}
		f, ok := ToFloat(v)
		if !ok {
			continue
		}
		if agg.Count == 0 || f < agg.Min {
			agg.Min = f
		}
		if agg.Count == 0 || f > agg.Max {
			agg.Max = f
		}
		agg.Count++
		agg.Sum += f
	}
	return agg
}
