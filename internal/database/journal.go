package database

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"

	"gem5art/internal/database/storage"
)

// The append-only journal is the engine's default durability path:
// instead of rewriting every collection file on Flush (O(total docs)
// per flush — unusable for a 10k-run sweep), each committed mutation
// appends one record to <dir>/journal/<collection>.wal and fsyncs.
// Startup replays the journal on top of the last snapshot; background
// compaction folds a grown journal into a fresh snapshot and truncates
// it.
//
// Record framing: one line per record, "crc32(payload-hex) payload\n"
// with a JSON payload. Replay stops at the first incomplete or
// corrupt line (a crash mid-append) and truncates the file back to the
// last good record, so a torn tail never poisons later appends.
//
// Records describe resolved effects, not queries: inserts carry the
// full document (with its assigned _id), updates carry the target _id
// plus the merged fields, deletes carry the removed _ids. Replay is
// therefore deterministic and idempotent — an insert re-applied after
// a crash between compaction's snapshot rename and journal truncation
// simply overwrites the same document.
//
// Commits are fail-fast: the journal record is appended and fsynced
// BEFORE the in-memory mutation is applied. A write or sync error
// fails the committing operation with *storage.DegradedError and flips
// the whole store read-only — a mutation is never acknowledged unless
// its record reached the journal under the configured durability.

// Journal operation kinds.
const (
	opInsert = "insert"
	opUpdate = "update"
	opDelete = "delete"
)

// journalRecord is one journal entry.
type journalRecord struct {
	Op  string   `json:"op"`
	Doc Doc      `json:"doc,omitempty"` // insert: the full document
	ID  string   `json:"id,omitempty"`  // update: target _id
	Set Doc      `json:"set,omitempty"` // update: merged fields
	IDs []string `json:"ids,omitempty"` // delete: removed _ids
}

// journalWriter appends framed records to one collection's journal
// file. It is guarded by the owning collection's mutex, which also
// makes journal order identical to apply order.
type journalWriter struct {
	f    storage.File
	path string
	sync bool
	recs int    // records appended since the last reset/replay
	size int64  // current file size in bytes
	gen  uint64 // bumped on every reset; replication readers carry it

	// snapGen is the generation whose snapshot this process wrote and
	// fsynced itself (set by compaction, which always bumps gen first —
	// so 0 means "no snapshot written this process"). The incremental
	// scrubber trusts a just-written snapshot instead of re-reading it;
	// the periodic full pass re-verifies regardless.
	snapGen uint64
}

// journalPath returns the wal path for a collection name.
func journalPath(dir, name string) string {
	return filepath.Join(dir, "journal", name+".wal")
}

// openJournalWriter opens (creating if needed) the journal for
// appending, positioned after goodBytes — the replay-validated prefix.
// Anything past it is a torn tail and is cut off.
func openJournalWriter(fs storage.FS, path string, goodBytes int64, recs int, syncOnCommit bool) (*journalWriter, error) {
	if err := fs.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(goodBytes); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(goodBytes, 0); err != nil {
		f.Close()
		return nil, err
	}
	return &journalWriter{f: f, path: path, sync: syncOnCommit, recs: recs, size: goodBytes}, nil
}

// append frames, writes, and (optionally) fsyncs one record. On
// failure it reports which durability step broke ("journal-append" or
// "journal-sync") and best-effort truncates the file back to the last
// good record, so an unacknowledged record or short-write tail does
// not replay after a reopen.
func (w *journalWriter) append(rec journalRecord) (reason string, err error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return "journal-append", fmt.Errorf("database: journal %s: marshal: %w", w.path, err)
	}
	line := make([]byte, 0, len(payload)+12)
	line = append(line, fmt.Sprintf("%08x ", crc32.ChecksumIEEE(payload))...)
	line = append(line, payload...)
	line = append(line, '\n')
	if _, err := w.f.Write(line); err != nil {
		w.rewind()
		return "journal-append", fmt.Errorf("database: journal %s: %w", w.path, err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			w.rewind()
			return "journal-sync", fmt.Errorf("database: journal %s: sync: %w", w.path, err)
		}
	}
	w.recs++
	w.size += int64(len(line))
	dbJournalRecords.With(rec.Op).Inc()
	return "", nil
}

// rewind best-effort truncates the journal back to the last
// acknowledged record after a failed append, so the unacknowledged
// bytes cannot replay after a reopen. If the truncate itself fails the
// store is degraded anyway and startup replay's CRC framing is the
// backstop.
func (w *journalWriter) rewind() {
	_ = w.f.Truncate(w.size)
	_, _ = w.f.Seek(w.size, 0)
}

// reset truncates the journal after a compaction folded its records
// into a snapshot. The generation bump invalidates every byte offset a
// replication reader holds: even if the journal regrows past a reader's
// old offset, JournalSegment sees the stale generation and forces a
// snapshot resync instead of serving mid-record bytes.
func (w *journalWriter) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.recs = 0
	w.size = 0
	w.gen++
	return nil
}

// close syncs and closes the journal.
func (w *journalWriter) close() error {
	err := w.f.Sync()
	if cerr := w.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// replayJournal parses the journal at path, returning every valid
// record and the byte length of the valid prefix. A missing file is an
// empty journal. Parsing stops — without error — at the first torn or
// corrupt line, implementing crash recovery by prefix truncation.
func replayJournal(fs storage.FS, path string) (recs []journalRecord, goodBytes int64, err error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn tail: record written without its newline
		}
		rec, ok := decodeJournalLine(data[:nl])
		if !ok {
			break // corrupt or half-written record
		}
		recs = append(recs, rec)
		goodBytes += int64(nl + 1)
		data = data[nl+1:]
	}
	return recs, goodBytes, nil
}

// decodeJournalLine validates one framed line.
func decodeJournalLine(line []byte) (journalRecord, bool) {
	var rec journalRecord
	sp := bytes.IndexByte(line, ' ')
	if sp != 8 {
		return rec, false
	}
	want, err := strconv.ParseUint(string(line[:sp]), 16, 32)
	if err != nil {
		return rec, false
	}
	payload := line[sp+1:]
	if crc32.ChecksumIEEE(payload) != uint32(want) {
		return rec, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, false
	}
	return rec, true
}

// logRecord journals one mutation BEFORE the caller applies it to
// memory, and schedules compaction when the journal has outgrown its
// usefulness. A journal failure degrades the store and is returned as
// *storage.DegradedError: the caller must not apply the mutation.
// Caller holds c.mu.
func (c *collection) logRecord(rec journalRecord) error {
	if c.journal == nil {
		if err := c.ensureJournal(); err != nil {
			return c.db.degrade("journal-open", err)
		}
		if c.journal == nil {
			return nil // in-memory or snapshot-mode store
		}
	}
	if reason, err := c.journal.append(rec); err != nil {
		return c.db.degrade(reason, err)
	}
	dbJournalBytes.With(c.name).Set(float64(c.journal.size))
	c.maybeCompactLocked()
	return nil
}

// maybeCompactLocked starts a background compaction when the journal
// holds at least CompactAfter records, or earlier when it dwarfs the
// live document count (update/delete-heavy histories replay slowly for
// no benefit). Caller holds c.mu.
func (c *collection) maybeCompactLocked() {
	if c.journal == nil || c.compacting {
		return
	}
	r := c.journal.recs
	if r < c.db.opts.CompactAfter && !(r >= 1024 && r >= 8*len(c.docs)) {
		return
	}
	c.compacting = true
	c.db.compactWG.Add(1)
	go func() {
		defer c.db.compactWG.Done()
		c.compact()
	}()
}

// compact folds the journal into a fresh snapshot: write the snapshot
// atomically (tmp + rename), then truncate the journal. A crash
// between the two re-applies the journal onto the new snapshot at the
// next open — harmless, because replay is idempotent. A disk failure
// in either step degrades the store: the journal still holds the
// records the snapshot may be missing, so reads stay correct, but no
// further mutations are accepted.
func (c *collection) compact() {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer func() { c.compacting = false }()
	if c.journal == nil { // closed while the compaction was queued
		return
	}
	if err := c.writeSnapshotLocked(); err != nil {
		c.db.degrade("compaction", err)
		return
	}
	if err := c.journal.reset(); err != nil {
		c.db.degrade("compaction", err)
		return
	}
	c.journal.snapGen = c.journal.gen
	dbJournalBytes.With(c.name).Set(0)
	dbCompactions.With(c.name).Inc()
}

// applyRecordLocked replays one journal record into memory. Replay
// maintains byID incrementally (inserts are upserts by _id); unique
// indexes are rebuilt once after the full replay. Caller holds c.mu.
func (c *collection) applyRecordLocked(rec journalRecord) {
	switch rec.Op {
	case opInsert:
		if rec.Doc == nil {
			return
		}
		id := fmt.Sprint(rec.Doc["_id"])
		if pos, ok := c.byID[id]; ok {
			c.docs[pos] = rec.Doc
		} else {
			c.docs = append(c.docs, rec.Doc)
			c.byID[id] = len(c.docs) - 1
		}
		c.bumpNextID(id)
	case opUpdate:
		pos, ok := c.byID[rec.ID]
		if !ok {
			return
		}
		for k, v := range rec.Set {
			if k != "_id" {
				c.docs[pos][k] = v
			}
		}
	case opDelete:
		dead := make(map[string]bool, len(rec.IDs))
		for _, id := range rec.IDs {
			dead[id] = true
		}
		kept := c.docs[:0]
		for _, d := range c.docs {
			if !dead[fmt.Sprint(d["_id"])] {
				kept = append(kept, d)
			}
		}
		for i := len(kept); i < len(c.docs); i++ {
			c.docs[i] = nil
		}
		c.docs = kept
		c.byID = make(map[string]int, len(c.docs))
		for i, d := range c.docs {
			c.byID[fmt.Sprint(d["_id"])] = i
		}
	}
}
