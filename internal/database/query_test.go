package database

import (
	"testing"
	"testing/quick"

	"gem5art/internal/database/storage"
)

func seeded(t *testing.T) Collection {
	t.Helper()
	db := MustOpen("")
	c := db.Collection("runs")
	rows := []Doc{
		{"app": "dedup", "seconds": 3.0, "cpu": map[string]any{"model": "timing"}},
		{"app": "vips", "seconds": 1.0, "cpu": map[string]any{"model": "o3"}},
		{"app": "ferret", "seconds": 2.0, "cpu": map[string]any{"model": "timing"}},
		{"app": "noval"},
	}
	if err := c.InsertMany(rows); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFindWithSort(t *testing.T) {
	c := seeded(t)
	asc := c.FindWith(nil, FindOptions{SortBy: "seconds"})
	if len(asc) != 4 {
		t.Fatalf("%d docs", len(asc))
	}
	if asc[0]["app"] != "vips" || asc[1]["app"] != "ferret" || asc[2]["app"] != "dedup" {
		t.Fatalf("ascending order: %v %v %v", asc[0]["app"], asc[1]["app"], asc[2]["app"])
	}
	if asc[3]["app"] != "noval" {
		t.Fatal("missing key should sort last ascending")
	}
	desc := c.FindWith(nil, FindOptions{SortBy: "seconds", Descending: true})
	if desc[0]["app"] != "noval" && desc[0]["app"] != "dedup" {
		// Missing-first is acceptable descending; the numeric head must
		// still be dedup among valued docs.
		t.Fatalf("descending head: %v", desc[0]["app"])
	}
}

func TestFindWithSortDottedKey(t *testing.T) {
	c := seeded(t)
	docs := c.FindWith(Doc{"seconds": Doc{"$exists": true}},
		FindOptions{SortBy: "cpu.model"})
	if docs[0]["app"] != "vips" { // "o3" < "timing"
		t.Fatalf("dotted sort head: %v", docs[0]["app"])
	}
}

func TestFindWithSkipLimit(t *testing.T) {
	c := seeded(t)
	page := c.FindWith(nil, FindOptions{SortBy: "seconds", Skip: 1, Limit: 2})
	if len(page) != 2 {
		t.Fatalf("page size %d", len(page))
	}
	if page[0]["app"] != "ferret" {
		t.Fatalf("page head: %v", page[0]["app"])
	}
	if got := c.FindWith(nil, FindOptions{Skip: 100}); got != nil {
		t.Fatal("skip past end should return nil")
	}
}

func TestFindWithProjection(t *testing.T) {
	c := seeded(t)
	docs := c.FindWith(Doc{"app": "dedup"}, FindOptions{Fields: []string{"seconds", "cpu.model"}})
	if len(docs) != 1 {
		t.Fatalf("%d docs", len(docs))
	}
	d := docs[0]
	if _, ok := d["app"]; ok {
		t.Fatal("projection leaked unrequested field")
	}
	if d["seconds"] != 3.0 || d["cpu.model"] != "timing" {
		t.Fatalf("projected: %v", d)
	}
	if _, ok := d["_id"]; !ok {
		t.Fatal("projection dropped _id")
	}
}

func TestAggregateKey(t *testing.T) {
	c := seeded(t)
	agg := c.AggregateKey(nil, "seconds")
	if agg.Count != 3 || agg.Sum != 6 || agg.Min != 1 || agg.Max != 3 {
		t.Fatalf("aggregate: %+v", agg)
	}
	if agg.Mean() != 2 {
		t.Fatalf("mean = %v", agg.Mean())
	}
	empty := c.AggregateKey(Doc{"app": "nothere"}, "seconds")
	if empty.Count != 0 || empty.Mean() != 0 {
		t.Fatalf("empty aggregate: %+v", empty)
	}
}

// Property: FindWith sorting never loses or duplicates documents.
func TestFindWithSortPreservesSetProperty(t *testing.T) {
	f := func(vals []int16) bool {
		db := MustOpen("")
		c := db.Collection("x")
		for _, v := range vals {
			if _, err := c.InsertOne(Doc{"v": int(v)}); err != nil {
				return false
			}
		}
		sorted := c.FindWith(nil, FindOptions{SortBy: "v"})
		if len(sorted) != len(vals) {
			return false
		}
		for i := 1; i < len(sorted); i++ {
			a, _ := storage.ToFloat(sorted[i-1]["v"])
			b, _ := storage.ToFloat(sorted[i]["v"])
			if a > b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
