// Package database implements the default storage engine behind the
// interfaces of internal/database/storage: an embedded document
// database modeled on the subset of MongoDB that gem5art depends on —
// named collections of JSON-like documents, filter-based queries,
// unique indexes (used to deduplicate artifacts by hash), and a
// GridFS-style chunked file store for large binary artifacts such as
// disk images and kernels.
//
// The engine runs fully in memory or persists to a directory. The
// persistent path is journaled by default: every mutation appends one
// fsynced record to a per-collection append-only journal, startup
// replays the journal on top of the last snapshot, and background
// compaction folds a grown journal back into a snapshot. Equality
// lookups on "_id" or on the keys of a unique index are served from
// hash indexes without scanning the collection.
//
// Consumers must not depend on the concrete types here — they program
// against storage.Store (aliased below as Store) so other engines can
// be swapped in.
package database

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gem5art/internal/database/storage"
)

// Interface and value types re-exported so call sites read
// database.Store / database.Doc while depending only on the
// engine-neutral storage contract.
type (
	Doc          = storage.Doc
	Store        = storage.Store
	Collection   = storage.Collection
	FileStore    = storage.FileStore
	FileMeta     = storage.FileMeta
	ErrDuplicate = storage.ErrDuplicate
	FindOptions  = storage.FindOptions
	Aggregate    = storage.Aggregate
)

// HashBytes returns the hex MD5 of data — the identity used for
// artifact deduplication throughout gem5art.
func HashBytes(data []byte) string { return storage.HashBytes(data) }

// Matches reports whether document d satisfies filter (see
// storage.Matches for the semantics).
func Matches(d, filter Doc) bool { return storage.Matches(d, filter) }

// Options selects and tunes the engine's durability path.
type Options struct {
	// Journal enables the append-only journal: mutations append records
	// instead of relying on whole-file snapshot rewrites at Flush time.
	// Ignored for in-memory stores (empty dir).
	Journal bool
	// SyncOnCommit fsyncs the journal after every mutation, making each
	// committed operation durable against process crashes.
	SyncOnCommit bool
	// CompactAfter triggers background compaction once a collection's
	// journal holds at least this many records (0 = default 8192).
	// Compaction also fires early when the journal dwarfs the live
	// document count, so delete/update-heavy workloads do not replay
	// unbounded history at startup.
	CompactAfter int
	// FS is the filesystem the engine's durable paths run through
	// (nil = the real filesystem). Chaos tests thread a
	// faultinject.DiskChaos here to inject deterministic disk faults
	// under the journal, snapshots, and the blob store.
	FS storage.FS
}

// DefaultOptions is the configuration Open uses: journaled, fsync on
// every commit.
func DefaultOptions() Options {
	return Options{Journal: true, SyncOnCommit: true, CompactAfter: 8192}
}

// Open opens (or creates) a database with the default engine options.
// If dir is empty the database lives purely in memory; otherwise
// collections and files are loaded from (snapshot + journal replay)
// and persisted to that directory.
func Open(dir string) (Store, error) { return OpenWith(dir, DefaultOptions()) }

// OpenWith opens a database with explicit engine options. Options only
// affect how mutations are made durable; any on-disk state (snapshots,
// journals, legacy layouts) is always loaded.
func OpenWith(dir string, opts Options) (Store, error) {
	db, err := open(dir, opts)
	if err != nil {
		return nil, err
	}
	return db, nil
}

// MustOpen is Open for tests and examples where failure is fatal.
func MustOpen(dir string) Store {
	db, err := Open(dir)
	if err != nil {
		panic(err)
	}
	return db
}

func open(dir string, opts Options) (*DB, error) {
	if opts.CompactAfter <= 0 {
		opts.CompactAfter = 8192
	}
	if opts.FS == nil {
		opts.FS = storage.OSFS
	}
	db := &DB{
		dir:         dir,
		opts:        opts,
		collections: make(map[string]*collection),
	}
	db.files = newFileStore(db)
	if dir != "" {
		start := time.Now()
		if err := db.load(); err != nil {
			return nil, fmt.Errorf("database: open %s: %w", dir, err)
		}
		dbReplaySeconds.Set(time.Since(start).Seconds())
	}
	return db, nil
}

// DB is the default embedded engine. It implements storage.Store.
type DB struct {
	mu          sync.RWMutex
	dir         string // "" means in-memory only
	opts        Options
	collections map[string]*collection
	files       *fileStore
	compactWG   sync.WaitGroup
	closed      bool                   // set by Close; surfaced through Health
	degraded    *storage.DegradedError // first durability failure; store is read-only once set
}

// fs returns the filesystem the engine's durable paths run through.
func (db *DB) fs() storage.FS {
	if db.opts.FS == nil {
		return storage.OSFS
	}
	return db.opts.FS
}

// degrade flips the store into read-only degraded mode on the first
// durability failure and returns the degraded error every subsequent
// mutation gets. Reads keep serving from memory; Health (and through
// it statusd /healthz) reports the reason until an operator repairs
// the disk and reopens the store.
func (db *DB) degrade(reason string, err error) *storage.DegradedError {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.degraded == nil {
		db.degraded = &storage.DegradedError{Reason: reason, Err: err}
		dbDegraded.Set(1)
		dbDegradedTotal.With(reason).Inc()
	}
	return db.degraded
}

// Degraded returns the *storage.DegradedError that flipped the store
// read-only, or nil while the store is healthy.
func (db *DB) Degraded() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.degraded == nil {
		return nil
	}
	return db.degraded
}

// Collection returns the named collection, creating it if necessary.
func (db *DB) Collection(name string) Collection { return db.collection(name) }

func (db *DB) collection(name string) *collection {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.collections[name]
	if !ok {
		c = &collection{name: name, db: db, byID: make(map[string]int)}
		db.collections[name] = c
	}
	return c
}

// CollectionNames returns the names of all collections in sorted order.
func (db *DB) CollectionNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.collections))
	for n := range db.collections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Files returns the database's file store.
func (db *DB) Files() FileStore { return db.files }

// snapshot returns the collections at a point in time for iteration
// without holding the database lock.
func (db *DB) snapshot() []*collection {
	db.mu.RLock()
	defer db.mu.RUnlock()
	cols := make([]*collection, 0, len(db.collections))
	for _, c := range db.collections {
		cols = append(cols, c)
	}
	return cols
}

// Close makes the database durable and releases it. With the journal
// enabled this is cheap — journals are already synced per commit, so
// Close only drains background compactions and closes file handles; it
// does not rewrite collections. Snapshot-mode stores flush in full.
func (db *DB) Close() error {
	db.mu.Lock()
	db.closed = true
	db.mu.Unlock()
	if db.dir == "" {
		return nil
	}
	db.compactWG.Wait()
	if !db.opts.Journal {
		return db.Flush()
	}
	var firstErr error
	for _, c := range db.snapshot() {
		c.mu.Lock()
		if c.journal != nil {
			if err := c.journal.close(); err != nil && firstErr == nil {
				firstErr = err
			}
			c.journal = nil
		}
		c.mu.Unlock()
	}
	if err := db.files.flushAll(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// collection is the engine's concrete collection. It implements
// storage.Collection.
type collection struct {
	mu         sync.RWMutex
	name       string
	db         *DB
	docs       []Doc
	uniques    []*uniqueIndex
	byID       map[string]int // "_id" -> position in docs
	nextID     int64
	journal    *journalWriter // nil when not journaling
	compacting bool           // a background compaction is queued or running
}

// Name returns the collection name.
func (c *collection) Name() string { return c.name }

// CreateUniqueIndex declares that the combination of the given keys
// must be unique across the collection, and builds a hash index over
// the existing documents so equality lookups on exactly these keys are
// O(1). Re-declaring an existing index is a no-op (registries install
// their indexes on every open).
func (c *collection) CreateUniqueIndex(keys ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, idx := range c.uniques {
		if sameKeys(idx.keys, keys) {
			return
		}
	}
	idx := newUniqueIndex(keys)
	idx.build(c.docs)
	c.uniques = append(c.uniques, idx)
}

func sameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// InsertOne inserts a deep copy of d, assigning an "_id" if absent,
// and returns the id. The journal record commits before memory is
// touched: a journal failure returns *storage.DegradedError and the
// document is not inserted.
func (c *collection) InsertOne(d Doc) (string, error) {
	defer observeOp("insert", time.Now())
	if err := c.db.Degraded(); err != nil {
		return "", err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := storage.CloneDoc(d)
	if _, ok := cp["_id"]; !ok {
		c.nextID++
		cp["_id"] = fmt.Sprintf("%s-%d", c.name, c.nextID)
	}
	if err := c.checkInsertLocked(cp); err != nil {
		return "", err
	}
	if err := c.logRecord(journalRecord{Op: opInsert, Doc: cp}); err != nil {
		return "", err
	}
	c.applyInsertLocked(cp)
	return fmt.Sprint(cp["_id"]), nil
}

// checkInsertLocked validates cp against "_id" and every unique index.
// Caller holds c.mu.
func (c *collection) checkInsertLocked(cp Doc) error {
	id := fmt.Sprint(cp["_id"])
	if _, dup := c.byID[id]; dup {
		return &ErrDuplicate{Collection: c.name, Keys: []string{"_id"}}
	}
	for _, idx := range c.uniques {
		if _, dup := idx.pos[canonicalKey(cp, idx.keys)]; dup {
			return &ErrDuplicate{Collection: c.name, Keys: idx.keys}
		}
	}
	return nil
}

// applyInsertLocked appends a validated document. The caller holds
// c.mu, has deep-copied the document, and has journaled the insert.
func (c *collection) applyInsertLocked(cp Doc) {
	id := fmt.Sprint(cp["_id"])
	pos := len(c.docs)
	c.docs = append(c.docs, cp)
	c.byID[id] = pos
	for _, idx := range c.uniques {
		idx.pos[canonicalKey(cp, idx.keys)] = pos
	}
}

// InsertMany inserts documents in order, stopping at the first error.
func (c *collection) InsertMany(ds []Doc) error {
	for _, d := range ds {
		if _, err := c.InsertOne(d); err != nil {
			return err
		}
	}
	return nil
}

// Find returns deep copies of all documents matching filter, in
// insertion order. Equality filters on "_id" or on a unique index's
// exact key set are answered from the index without scanning.
func (c *collection) Find(filter Doc) []Doc {
	defer observeOp("find", time.Now())
	c.mu.RLock()
	defer c.mu.RUnlock()
	if pos, found, eligible := c.indexLookupLocked(filter); eligible {
		if found && storage.Matches(c.docs[pos], filter) {
			return []Doc{storage.CloneDoc(c.docs[pos])}
		}
		return nil
	}
	var out []Doc
	for _, d := range c.docs {
		if storage.Matches(d, filter) {
			out = append(out, storage.CloneDoc(d))
		}
	}
	return out
}

// FindOne returns the first matching document, or nil if none matches.
func (c *collection) FindOne(filter Doc) Doc {
	defer observeOp("find_one", time.Now())
	c.mu.RLock()
	defer c.mu.RUnlock()
	if pos, found, eligible := c.indexLookupLocked(filter); eligible {
		if found && storage.Matches(c.docs[pos], filter) {
			return storage.CloneDoc(c.docs[pos])
		}
		return nil
	}
	for _, d := range c.docs {
		if storage.Matches(d, filter) {
			return storage.CloneDoc(d)
		}
	}
	return nil
}

// Count returns the number of matching documents.
func (c *collection) Count(filter Doc) int {
	defer observeOp("count", time.Now())
	c.mu.RLock()
	defer c.mu.RUnlock()
	if pos, found, eligible := c.indexLookupLocked(filter); eligible {
		if found && storage.Matches(c.docs[pos], filter) {
			return 1
		}
		return 0
	}
	n := 0
	for _, d := range c.docs {
		if storage.Matches(d, filter) {
			n++
		}
	}
	return n
}

// FindWith returns matching documents refined by opts.
func (c *collection) FindWith(filter Doc, opts FindOptions) []Doc {
	return storage.ApplyFindOptions(c.Find(filter), opts)
}

// AggregateKey summarizes the numeric values of key over matching
// documents without copying them.
func (c *collection) AggregateKey(filter Doc, key string) Aggregate {
	defer observeOp("aggregate", time.Now())
	c.mu.RLock()
	defer c.mu.RUnlock()
	var agg Aggregate
	for _, d := range c.docs {
		if !storage.Matches(d, filter) {
			continue
		}
		v, ok := storage.Lookup(d, key)
		if !ok {
			continue
		}
		f, ok := storage.ToFloat(v)
		if !ok {
			continue
		}
		if agg.Count == 0 || f < agg.Min {
			agg.Min = f
		}
		if agg.Count == 0 || f > agg.Max {
			agg.Max = f
		}
		agg.Count++
		agg.Sum += f
	}
	return agg
}

// UpdateOne merges set into the first document matching filter and
// reports whether a document matched. A merge that would collide with
// another document on a unique index is rejected with *ErrDuplicate
// and leaves the store unchanged.
func (c *collection) UpdateOne(filter, set Doc) (bool, error) {
	defer observeOp("update", time.Now())
	if err := c.db.Degraded(); err != nil {
		return false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	pos := -1
	if p, found, eligible := c.indexLookupLocked(filter); eligible {
		if found && storage.Matches(c.docs[p], filter) {
			pos = p
		}
	} else {
		for i, d := range c.docs {
			if storage.Matches(d, filter) {
				pos = i
				break
			}
		}
	}
	if pos < 0 {
		return false, nil
	}
	d := c.docs[pos]
	// Validate the merged document against every unique index before
	// touching anything: an update must not sneak past the uniqueness
	// guarantee an insert would have hit.
	merged := storage.CloneDoc(d)
	for k, v := range set {
		if k == "_id" {
			continue
		}
		merged[k] = v
	}
	type rekey struct {
		idx      *uniqueIndex
		old, new string
	}
	var rekeys []rekey
	for _, idx := range c.uniques {
		oldKey := canonicalKey(d, idx.keys)
		newKey := canonicalKey(merged, idx.keys)
		if oldKey == newKey {
			continue
		}
		if other, taken := idx.pos[newKey]; taken && other != pos {
			return false, &ErrDuplicate{Collection: c.name, Keys: idx.keys}
		}
		rekeys = append(rekeys, rekey{idx, oldKey, newKey})
	}
	setCopy := storage.CloneDoc(set)
	delete(setCopy, "_id")
	// Journal first: a failed commit must leave the document and the
	// indexes untouched.
	if err := c.logRecord(journalRecord{Op: opUpdate, ID: fmt.Sprint(d["_id"]), Set: setCopy}); err != nil {
		return false, err
	}
	for _, rk := range rekeys {
		delete(rk.idx.pos, rk.old)
		rk.idx.pos[rk.new] = pos
	}
	for k, v := range setCopy {
		d[k] = v
	}
	return true, nil
}

// DeleteMany removes all matching documents and returns how many were
// removed. On a degraded store (or a journal failure during the
// commit) nothing is removed and 0 is returned — the interface carries
// no error, so refusing the whole operation is the fail-fast answer.
func (c *collection) DeleteMany(filter Doc) int {
	defer observeOp("delete", time.Now())
	if err := c.db.Degraded(); err != nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var removedIDs []string
	for _, d := range c.docs {
		if storage.Matches(d, filter) {
			removedIDs = append(removedIDs, fmt.Sprint(d["_id"]))
		}
	}
	if len(removedIDs) == 0 {
		return 0
	}
	// Journal first: a failed commit must not drop documents from
	// memory that a reopen would resurrect.
	if err := c.logRecord(journalRecord{Op: opDelete, IDs: removedIDs}); err != nil {
		return 0
	}
	kept := c.docs[:0]
	for _, d := range c.docs {
		if !storage.Matches(d, filter) {
			kept = append(kept, d)
		}
	}
	for i := len(kept); i < len(c.docs); i++ {
		c.docs[i] = nil // release removed docs
	}
	c.docs = kept
	c.rebuildIndexesLocked()
	return len(removedIDs)
}

// Distinct returns the distinct values of key across matching
// documents, in first-seen order. Values are deep-copied.
func (c *collection) Distinct(key string, filter Doc) []any {
	defer observeOp("distinct", time.Now())
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []any
	seen := make(map[string]bool)
	for _, d := range c.docs {
		if !storage.Matches(d, filter) {
			continue
		}
		v, ok := storage.Lookup(d, key)
		if !ok {
			continue
		}
		k := fmt.Sprintf("%T:%v", v, v)
		if !seen[k] {
			seen[k] = true
			out = append(out, storage.CloneValue(v))
		}
	}
	return out
}

// bumpNextID advances the id counter past a loaded document's
// generated id, so reopened collections never reissue an id.
func (c *collection) bumpNextID(id string) {
	rest, ok := strings.CutPrefix(id, c.name+"-")
	if !ok {
		return
	}
	if n, err := strconv.ParseInt(rest, 10, 64); err == nil && n > c.nextID {
		c.nextID = n
	}
}
