// Package database implements an embedded document database modeled on the
// subset of MongoDB that gem5art depends on: named collections of JSON-like
// documents, filter-based queries, unique indexes (used to deduplicate
// artifacts by hash), and a GridFS-style chunked file store for large
// binary artifacts such as disk images and kernels.
//
// The database is safe for concurrent use and can run fully in memory or
// persist every collection as a JSON-lines file under a directory.
package database

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Doc is a single document: a JSON-like map from field names to values.
// Nested documents are Doc or map[string]any; arrays are []any.
type Doc = map[string]any

// DB is an embedded document database instance.
type DB struct {
	mu          sync.RWMutex
	dir         string // "" means in-memory only
	collections map[string]*Collection
	files       *FileStore
}

// Open opens (or creates) a database. If dir is empty the database lives
// purely in memory; otherwise collections and files are loaded from and
// persisted to that directory.
func Open(dir string) (*DB, error) {
	db := &DB{
		dir:         dir,
		collections: make(map[string]*Collection),
	}
	db.files = newFileStore(db)
	if dir != "" {
		if err := db.load(); err != nil {
			return nil, fmt.Errorf("database: open %s: %w", dir, err)
		}
	}
	return db, nil
}

// MustOpen is Open for tests and examples where failure is fatal.
func MustOpen(dir string) *DB {
	db, err := Open(dir)
	if err != nil {
		panic(err)
	}
	return db
}

// Collection returns the named collection, creating it if necessary.
func (db *DB) Collection(name string) *Collection {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.collections[name]
	if !ok {
		c = &Collection{name: name, db: db}
		db.collections[name] = c
	}
	return c
}

// CollectionNames returns the names of all collections in sorted order.
func (db *DB) CollectionNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.collections))
	for n := range db.collections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Files returns the database's file store.
func (db *DB) Files() *FileStore { return db.files }

// Close flushes the database to disk (when persistent) and releases it.
func (db *DB) Close() error {
	if db.dir == "" {
		return nil
	}
	return db.Flush()
}

// Collection is an ordered set of documents with optional unique indexes.
type Collection struct {
	mu      sync.RWMutex
	name    string
	db      *DB
	docs    []Doc
	uniques [][]string // each entry is a set of keys forming a unique index
	nextID  int64
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// ErrDuplicate is returned when an insert violates a unique index.
type ErrDuplicate struct {
	Collection string
	Keys       []string
}

func (e *ErrDuplicate) Error() string {
	return fmt.Sprintf("database: duplicate document in %s on index (%s)",
		e.Collection, strings.Join(e.Keys, ","))
}

// CreateUniqueIndex declares that the combination of the given keys must be
// unique across the collection. Inserting a document whose values for the
// keys match an existing document fails with *ErrDuplicate.
func (c *Collection) CreateUniqueIndex(keys ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ks := append([]string(nil), keys...)
	c.uniques = append(c.uniques, ks)
}

// InsertOne inserts a document, assigning an "_id" if absent, and returns
// the id. The document is shallow-copied so later caller mutations do not
// corrupt the store.
func (c *Collection) InsertOne(d Doc) (string, error) {
	defer observeOp("insert", time.Now())
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := copyDoc(d)
	if _, ok := cp["_id"]; !ok {
		c.nextID++
		cp["_id"] = fmt.Sprintf("%s-%d", c.name, c.nextID)
	}
	for _, keys := range c.uniques {
		for _, existing := range c.docs {
			if docsMatchOnKeys(existing, cp, keys) {
				return "", &ErrDuplicate{Collection: c.name, Keys: keys}
			}
		}
	}
	c.docs = append(c.docs, cp)
	return fmt.Sprint(cp["_id"]), nil
}

// InsertMany inserts documents in order, stopping at the first error.
func (c *Collection) InsertMany(ds []Doc) error {
	for _, d := range ds {
		if _, err := c.InsertOne(d); err != nil {
			return err
		}
	}
	return nil
}

// Find returns copies of all documents matching filter, in insertion order.
// A nil or empty filter matches every document.
func (c *Collection) Find(filter Doc) []Doc {
	defer observeOp("find", time.Now())
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Doc
	for _, d := range c.docs {
		if Matches(d, filter) {
			out = append(out, copyDoc(d))
		}
	}
	return out
}

// FindOne returns the first matching document, or nil if none matches.
func (c *Collection) FindOne(filter Doc) Doc {
	defer observeOp("find_one", time.Now())
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, d := range c.docs {
		if Matches(d, filter) {
			return copyDoc(d)
		}
	}
	return nil
}

// Count returns the number of matching documents.
func (c *Collection) Count(filter Doc) int {
	defer observeOp("count", time.Now())
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, d := range c.docs {
		if Matches(d, filter) {
			n++
		}
	}
	return n
}

// UpdateOne merges set into the first document matching filter and reports
// whether a document was updated.
func (c *Collection) UpdateOne(filter, set Doc) bool {
	defer observeOp("update", time.Now())
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, d := range c.docs {
		if Matches(d, filter) {
			for k, v := range set {
				if k == "_id" {
					continue
				}
				d[k] = v
			}
			return true
		}
	}
	return false
}

// DeleteMany removes all matching documents and returns how many were
// removed.
func (c *Collection) DeleteMany(filter Doc) int {
	defer observeOp("delete", time.Now())
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.docs[:0]
	removed := 0
	for _, d := range c.docs {
		if Matches(d, filter) {
			removed++
			continue
		}
		kept = append(kept, d)
	}
	c.docs = kept
	return removed
}

// Distinct returns the distinct values of key across matching documents,
// in first-seen order.
func (c *Collection) Distinct(key string, filter Doc) []any {
	defer observeOp("distinct", time.Now())
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []any
	seen := make(map[string]bool)
	for _, d := range c.docs {
		if !Matches(d, filter) {
			continue
		}
		v, ok := lookup(d, key)
		if !ok {
			continue
		}
		k := fmt.Sprintf("%T:%v", v, v)
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	return out
}

func docsMatchOnKeys(a, b Doc, keys []string) bool {
	for _, k := range keys {
		av, aok := lookup(a, k)
		bv, bok := lookup(b, k)
		if aok != bok || !valuesEqual(av, bv) {
			return false
		}
	}
	return true
}

func copyDoc(d Doc) Doc {
	cp := make(Doc, len(d))
	for k, v := range d {
		cp[k] = v
	}
	return cp
}
