package database

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"gem5art/internal/database/storage"
)

// uniqueIndex is a hash index over one unique key set: it maps the
// canonical encoding of a document's values for the keys to the
// document's position in the collection slice. It serves two jobs:
// O(1) duplicate detection on insert/update, and O(1) equality lookups
// for Find/FindOne/Count/UpdateOne filters that pin all of its keys.
type uniqueIndex struct {
	keys []string
	pos  map[string]int
}

func newUniqueIndex(keys []string) *uniqueIndex {
	return &uniqueIndex{keys: append([]string(nil), keys...), pos: make(map[string]int)}
}

// build indexes existing documents. Pre-existing duplicates are
// tolerated (last position wins), matching how indexes have always
// been installed over already-loaded collections.
func (idx *uniqueIndex) build(docs []Doc) {
	idx.pos = make(map[string]int, len(docs))
	for i, d := range docs {
		idx.pos[canonicalKey(d, idx.keys)] = i
	}
}

// rebuildIndexesLocked recomputes every index after positions shifted
// (deletions, journal replay). Caller holds c.mu.
func (c *collection) rebuildIndexesLocked() {
	c.byID = make(map[string]int, len(c.docs))
	for i, d := range c.docs {
		c.byID[fmt.Sprint(d["_id"])] = i
	}
	for _, idx := range c.uniques {
		idx.build(c.docs)
	}
}

// indexLookupLocked plans an index answer for filter. eligible reports
// that the filter pins "_id" or every key of some unique index with
// plain equality values, so the (at most one) candidate position fully
// answers the query; found reports whether a candidate exists. Callers
// must still verify the candidate with storage.Matches — the filter
// may constrain additional keys (including operator expressions).
// Caller holds c.mu (read or write).
func (c *collection) indexLookupLocked(filter Doc) (pos int, found, eligible bool) {
	if len(filter) == 0 {
		return 0, false, false
	}
	if v, ok := filter["_id"]; ok {
		if _, isOps := storage.OperatorDoc(v); !isOps {
			p, hit := c.byID[fmt.Sprint(v)]
			countIndexLookup(hit)
			return p, hit, true
		}
	}
	for _, idx := range c.uniques {
		key, ok := filterKey(filter, idx.keys)
		if !ok {
			continue
		}
		p, hit := idx.pos[key]
		countIndexLookup(hit)
		return p, hit, true
	}
	dbFullScans.Inc()
	return 0, false, false
}

// filterKey builds the canonical index key from a filter that names
// every index key as a literal (non-operator) entry. ok is false when
// a key is absent from the filter, carries an operator expression, or
// a value cannot be canonically encoded.
func filterKey(filter Doc, keys []string) (string, bool) {
	var sb strings.Builder
	for _, k := range keys {
		v, ok := filter[k]
		if !ok {
			return "", false
		}
		if _, isOps := storage.OperatorDoc(v); isOps {
			return "", false
		}
		if !encodeValue(&sb, v) {
			return "", false
		}
		sb.WriteByte(';')
	}
	return sb.String(), true
}

// canonicalKey encodes a document's values for the index keys. Missing
// keys encode as a dedicated token (two documents both missing a key
// collide, exactly as the scan-based duplicate check always treated
// them). A value that cannot be canonically encoded makes the document
// non-colliding: the scan semantics never consider such values equal,
// so the entry is keyed by the document's own id.
func canonicalKey(d Doc, keys []string) string {
	var sb strings.Builder
	for _, k := range keys {
		v, ok := storage.Lookup(d, k)
		if !ok {
			sb.WriteString("m;")
			continue
		}
		if !encodeValue(&sb, v) {
			return "\x00doc:" + fmt.Sprint(d["_id"])
		}
		sb.WriteByte(';')
	}
	return sb.String()
}

// encodeValue appends a canonical encoding of v such that two values
// encode identically iff storage.ValuesEqual holds: all numeric types
// widen to float64, map keys are sorted, strings are quoted so
// delimiters cannot collide. Returns false for types ValuesEqual never
// considers equal.
func encodeValue(sb *strings.Builder, v any) bool {
	if f, ok := storage.ToFloat(v); ok {
		sb.WriteString("n:")
		sb.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
		return true
	}
	switch t := v.(type) {
	case string:
		sb.WriteString("s:")
		sb.WriteString(strconv.Quote(t))
		return true
	case bool:
		sb.WriteString("b:")
		sb.WriteString(strconv.FormatBool(t))
		return true
	case nil:
		sb.WriteString("z")
		return true
	case []any:
		sb.WriteString("a[")
		for _, e := range t {
			if !encodeValue(sb, e) {
				return false
			}
			sb.WriteByte(',')
		}
		sb.WriteByte(']')
		return true
	case map[string]any:
		ks := make([]string, 0, len(t))
		for k := range t {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		sb.WriteString("d{")
		for _, k := range ks {
			sb.WriteString(strconv.Quote(k))
			sb.WriteByte('=')
			if !encodeValue(sb, t[k]) {
				return false
			}
			sb.WriteByte(',')
		}
		sb.WriteByte('}')
		return true
	}
	return false
}
