package database

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// On-disk layout under the database directory:
//
//	<dir>/collections/<name>.jsonl  — one JSON document per line
//	<dir>/files/<hash>.blob         — base64 of the file content
//	<dir>/files/<hash>.meta         — JSON FileMeta
//
// The format is intentionally line-oriented and human-inspectable, in the
// spirit of gem5art's "freely available tools may be used to process this
// data".

// Flush writes all collections and files to the database directory.
func (db *DB) Flush() error {
	if db.dir == "" {
		return nil
	}
	colDir := filepath.Join(db.dir, "collections")
	if err := os.MkdirAll(colDir, 0o755); err != nil {
		return err
	}
	db.mu.RLock()
	cols := make([]*Collection, 0, len(db.collections))
	for _, c := range db.collections {
		cols = append(cols, c)
	}
	db.mu.RUnlock()
	for _, c := range cols {
		if err := c.flush(colDir); err != nil {
			return err
		}
	}
	return db.files.flush(filepath.Join(db.dir, "files"))
}

func (c *Collection) flush(dir string) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var sb strings.Builder
	for _, d := range c.docs {
		line, err := json.Marshal(d)
		if err != nil {
			return fmt.Errorf("database: marshal doc in %s: %w", c.name, err)
		}
		sb.Write(line)
		sb.WriteByte('\n')
	}
	return os.WriteFile(filepath.Join(dir, c.name+".jsonl"), []byte(sb.String()), 0o644)
}

func (fs *FileStore) flush(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	for hash, meta := range fs.metas {
		metaPath := filepath.Join(dir, hash+".meta")
		if _, err := os.Stat(metaPath); err == nil {
			continue // blobs are content-addressed and immutable
		}
		var data []byte
		for _, chunk := range fs.data[hash] {
			data = append(data, chunk...)
		}
		enc := base64.StdEncoding.EncodeToString(data)
		if err := os.WriteFile(filepath.Join(dir, hash+".blob"), []byte(enc), 0o644); err != nil {
			return err
		}
		mj, err := json.Marshal(meta)
		if err != nil {
			return err
		}
		if err := os.WriteFile(metaPath, mj, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) load() error {
	colDir := filepath.Join(db.dir, "collections")
	entries, err := os.ReadDir(colDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // fresh database
		}
		return err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".jsonl") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".jsonl")
		if err := db.loadCollection(name, filepath.Join(colDir, e.Name())); err != nil {
			return err
		}
	}
	return db.files.load(filepath.Join(db.dir, "files"))
}

func (db *DB) loadCollection(name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	c := db.Collection(name)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var d Doc
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			return fmt.Errorf("database: load %s: %w", name, err)
		}
		c.mu.Lock()
		c.docs = append(c.docs, d)
		c.nextID++
		c.mu.Unlock()
	}
	return sc.Err()
}

func (fs *FileStore) load(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".meta") {
			continue
		}
		mj, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		var meta FileMeta
		if err := json.Unmarshal(mj, &meta); err != nil {
			return err
		}
		bj, err := os.ReadFile(filepath.Join(dir, meta.Hash+".blob"))
		if err != nil {
			return err
		}
		data, err := base64.StdEncoding.DecodeString(string(bj))
		if err != nil {
			return err
		}
		fs.Put(meta.Name, data)
	}
	return nil
}
