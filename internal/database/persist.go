package database

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// On-disk layout under the database directory:
//
//	<dir>/collections/<name>.jsonl  — snapshot: one JSON document per line
//	<dir>/journal/<name>.wal        — append-only journal since the snapshot
//	<dir>/files/<hash>.blob         — raw file content
//	<dir>/files/<hash>.meta         — JSON FileMeta
//	<dir>/quarantine/               — corrupt blobs moved aside by Scrub
//
// The formats are line-oriented and human-inspectable, in the spirit
// of gem5art's "freely available tools may be used to process this
// data". Blobs written by older versions were base64-encoded; they are
// still read transparently (see fileStore.load).
//
// Every write path goes through db.fs() so chaos tests can inject
// disk faults deterministically (faultinject.DiskChaos).

// Flush compacts every collection — snapshot written atomically, then
// the journal truncated — and persists any unwritten file blobs. With
// the journal enabled Flush is never required for durability; it is
// the explicit "fold history into snapshots now" operation. A degraded
// store refuses to flush: the journal is the only trustworthy record.
func (db *DB) Flush() error {
	if db.dir == "" {
		return nil
	}
	if err := db.Degraded(); err != nil {
		return err
	}
	for _, c := range db.snapshot() {
		c.mu.Lock()
		err := c.flushLocked()
		c.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return db.files.flushAll()
}

// flushLocked snapshots the collection and truncates/removes its
// journal. Caller holds c.mu.
func (c *collection) flushLocked() error {
	// A failed snapshot or journal reset is a durability failure like any
	// other: degrade rather than let the caller believe the fold happened.
	if err := c.writeSnapshotLocked(); err != nil {
		return c.db.degrade("snapshot", err)
	}
	if c.journal != nil {
		if err := c.journal.reset(); err != nil {
			return c.db.degrade("compaction", err)
		}
		c.journal.snapGen = c.journal.gen
		dbJournalBytes.With(c.name).Set(0)
		return nil
	}
	// Snapshot-mode store: a wal left behind by a journaled session is
	// now folded into the snapshot and must not replay again.
	if err := c.db.fs().Remove(journalPath(c.db.dir, c.name)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// writeSnapshotLocked writes the collection snapshot atomically:
// marshal to a temp file, fsync, rename over the final name. Caller
// holds c.mu.
func (c *collection) writeSnapshotLocked() error {
	fs := c.db.fs()
	dir := filepath.Join(c.db.dir, "collections")
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var buf bytes.Buffer
	for _, d := range c.docs {
		line, err := json.Marshal(d)
		if err != nil {
			return fmt.Errorf("database: marshal doc in %s: %w", c.name, err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	final := filepath.Join(dir, c.name+".jsonl")
	tmp := final + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Rename(tmp, final)
}

// load restores the database: orphaned tmp files are swept, then
// snapshots, then journal replay on top, then the file store.
func (db *DB) load() error {
	db.sweepTmpFiles()
	names := make(map[string]bool)
	colDir := filepath.Join(db.dir, "collections")
	if entries, err := db.fs().ReadDir(colDir); err == nil {
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".jsonl") {
				names[strings.TrimSuffix(e.Name(), ".jsonl")] = true
			}
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	// A collection may exist only in the journal (created after the
	// last compaction — or never compacted at all).
	if entries, err := db.fs().ReadDir(filepath.Join(db.dir, "journal")); err == nil {
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".wal") {
				names[strings.TrimSuffix(e.Name(), ".wal")] = true
			}
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	for name := range names {
		if err := db.loadCollection(name, filepath.Join(colDir, name+".jsonl")); err != nil {
			return err
		}
	}
	return db.files.load(filepath.Join(db.dir, "files"))
}

// sweepTmpFiles removes orphaned *.tmp files a crash mid-compaction or
// mid-rename stranded in the snapshot, journal, and blob directories.
// Both atomic-rename sites (writeSnapshotLocked, writeBlob) publish
// via "<final>.tmp" → rename, so any surviving .tmp is by construction
// incomplete and must not shadow real state or leak disk forever.
func (db *DB) sweepTmpFiles() {
	fs := db.fs()
	for _, sub := range []string{"collections", "journal", "files"} {
		dir := filepath.Join(db.dir, sub)
		entries, err := fs.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".tmp") {
				continue
			}
			if err := fs.Remove(filepath.Join(dir, e.Name())); err == nil {
				dbTmpSwept.Inc()
			}
		}
	}
}

// loadCollection restores one collection: snapshot lines, then journal
// records, then index rebuild, then (in journal mode) the writer is
// attached positioned after the journal's valid prefix.
func (db *DB) loadCollection(name, snapshotPath string) error {
	c := db.collection(name)
	c.mu.Lock()
	defer c.mu.Unlock()

	if f, err := db.fs().OpenFile(snapshotPath, os.O_RDONLY, 0); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			var d Doc
			if err := json.Unmarshal([]byte(line), &d); err != nil {
				f.Close()
				return fmt.Errorf("database: load %s: %w", name, err)
			}
			c.docs = append(c.docs, d)
		}
		err := sc.Err()
		f.Close()
		if err != nil {
			return err
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	c.byID = make(map[string]int, len(c.docs))
	for i, d := range c.docs {
		id := fmt.Sprint(d["_id"])
		c.byID[id] = i
		c.bumpNextID(id)
	}

	walPath := journalPath(db.dir, name)
	start := time.Now()
	recs, goodBytes, err := replayJournal(db.fs(), walPath)
	if err != nil {
		return fmt.Errorf("database: replay %s: %w", name, err)
	}
	for _, rec := range recs {
		c.applyRecordLocked(rec)
	}
	if len(recs) > 0 {
		dbReplayedRecords.Add(float64(len(recs)))
		dbCollectionReplaySeconds.With(name).Set(time.Since(start).Seconds())
	}
	c.rebuildIndexesLocked()
	for _, d := range c.docs {
		c.bumpNextID(fmt.Sprint(d["_id"]))
	}

	if db.opts.Journal {
		w, err := openJournalWriter(db.fs(), walPath, goodBytes, len(recs), db.opts.SyncOnCommit)
		if err != nil {
			return fmt.Errorf("database: journal %s: %w", name, err)
		}
		c.journal = w
		dbJournalBytes.With(name).Set(float64(goodBytes))
	}
	return nil
}

// ensureJournal lazily attaches a journal writer to a collection that
// was created after open (no on-disk state yet). A failure to open the
// journal is a durability failure: the caller degrades the store
// rather than silently running the collection unjournaled. Caller
// holds c.mu.
func (c *collection) ensureJournal() error {
	if c.journal != nil || c.db.dir == "" || !c.db.opts.Journal {
		return nil
	}
	w, err := openJournalWriter(c.db.fs(), journalPath(c.db.dir, c.name), 0, 0, c.db.opts.SyncOnCommit)
	if err != nil {
		return fmt.Errorf("database: journal %s: %w", c.name, err)
	}
	c.journal = w
	return nil
}
