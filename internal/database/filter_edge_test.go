package database

import "testing"

// Edge cases of Matches: nested (dotted) field traversal, missing
// fields, type mismatches, and malformed operator arguments — the
// inputs a status daemon forwarding raw query parameters can produce.

func runDoc() Doc {
	return Doc{
		"_id":    "r1",
		"name":   "boot-vmlinux-5.4.49",
		"status": "done",
		"insts":  float64(123456),
		"artifacts": map[string]any{
			"gem5": "a-gem5",
			"disk": "a-disk",
			"meta": map[string]any{"rev": float64(3)},
		},
		"params": []any{"cores=4", "mem=MESI"},
	}
}

func TestMatchesNestedFields(t *testing.T) {
	d := runDoc()
	cases := []struct {
		name   string
		filter Doc
		want   bool
	}{
		{"one level", Doc{"artifacts.gem5": "a-gem5"}, true},
		{"one level wrong value", Doc{"artifacts.gem5": "other"}, false},
		{"two levels", Doc{"artifacts.meta.rev": float64(3)}, true},
		{"two levels int vs float64", Doc{"artifacts.meta.rev": 3}, true},
		{"missing leaf", Doc{"artifacts.kernel": "x"}, false},
		{"missing branch", Doc{"results.outcome": "success"}, false},
		{"dotted path through non-map", Doc{"name.sub": "x"}, false},
		{"dotted path through list", Doc{"params.0": "cores=4"}, false},
		{"exact nested doc equality", Doc{"artifacts": map[string]any{
			"gem5": "a-gem5", "disk": "a-disk",
			"meta": map[string]any{"rev": float64(3)},
		}}, true},
		{"nested doc equality missing key", Doc{"artifacts": map[string]any{
			"gem5": "a-gem5",
		}}, false},
	}
	for _, c := range cases {
		if got := Matches(d, c.filter); got != c.want {
			t.Errorf("%s: Matches(%v) = %v, want %v", c.name, c.filter, got, c.want)
		}
	}
}

func TestMatchesMissingFields(t *testing.T) {
	d := runDoc()
	cases := []struct {
		name   string
		filter Doc
		want   bool
	}{
		{"equality on missing field", Doc{"outcome": "success"}, false},
		{"equality on missing field vs nil", Doc{"outcome": nil}, false},
		{"$exists true on present", Doc{"status": Doc{"$exists": true}}, true},
		{"$exists false on present", Doc{"status": Doc{"$exists": false}}, false},
		{"$exists true on missing", Doc{"outcome": Doc{"$exists": true}}, false},
		{"$exists false on missing", Doc{"outcome": Doc{"$exists": false}}, true},
		{"$exists false on missing nested", Doc{"artifacts.kernel": Doc{"$exists": false}}, true},
		// $ne is vacuously true on a missing field (nothing to differ from).
		{"$ne on missing field", Doc{"outcome": Doc{"$ne": "success"}}, true},
		// Ordered comparisons require the field to be present.
		{"$gt on missing field", Doc{"outcome": Doc{"$gt": 1}}, false},
		{"$in on missing field", Doc{"outcome": Doc{"$in": []any{"success"}}}, false},
		{"$contains on missing field", Doc{"outcome": Doc{"$contains": "succ"}}, false},
	}
	for _, c := range cases {
		if got := Matches(d, c.filter); got != c.want {
			t.Errorf("%s: Matches(%v) = %v, want %v", c.name, c.filter, got, c.want)
		}
	}
}

func TestMatchesTypeMismatches(t *testing.T) {
	d := runDoc()
	cases := []struct {
		name   string
		filter Doc
		want   bool
	}{
		{"string field vs number", Doc{"status": 1}, false},
		{"number field vs string", Doc{"insts": "123456"}, false},
		{"number field vs bool", Doc{"insts": true}, false},
		// All numeric Go types are mutually comparable.
		{"float64 field vs int", Doc{"insts": 123456}, true},
		{"float64 field vs int64", Doc{"insts": int64(123456)}, true},
		{"float64 field vs uint32", Doc{"insts": uint32(123456)}, true},
		// Ordered comparison across types is no-match, not a panic.
		{"$gt string arg on number field", Doc{"insts": Doc{"$gt": "100"}}, false},
		{"$gt number arg on string field", Doc{"status": Doc{"$gt": 1}}, false},
		{"$lt bool arg", Doc{"insts": Doc{"$lt": true}}, false},
		{"$gt on string field compares lexically", Doc{"status": Doc{"$gt": "aaa"}}, true},
		{"$contains on non-string field", Doc{"insts": Doc{"$contains": "123"}}, false},
		{"$contains non-string arg", Doc{"status": Doc{"$contains": 1}}, false},
		{"list field vs scalar", Doc{"params": "cores=4"}, false},
	}
	for _, c := range cases {
		if got := Matches(d, c.filter); got != c.want {
			t.Errorf("%s: Matches(%v) = %v, want %v", c.name, c.filter, got, c.want)
		}
	}
}

func TestMatchesMalformedOperators(t *testing.T) {
	d := runDoc()
	cases := []struct {
		name   string
		filter Doc
		want   bool
	}{
		{"$in with non-list arg", Doc{"status": Doc{"$in": "done"}}, false},
		{"$in with empty list", Doc{"status": Doc{"$in": []any{}}}, false},
		{"$in with mixed types", Doc{"insts": Doc{"$in": []any{"x", 123456}}}, true},
		{"unknown operator", Doc{"status": Doc{"$regex": "do.*"}}, false},
		// A document value whose keys are not all operators is an exact match.
		{"mixed op and plain keys", Doc{"status": map[string]any{"$ne": "x", "k": 1}}, false},
		{"empty operator doc is equality", Doc{"status": map[string]any{}}, false},
		{"$exists non-bool arg means false", Doc{"outcome": Doc{"$exists": "yes"}}, true},
	}
	for _, c := range cases {
		if got := Matches(d, c.filter); got != c.want {
			t.Errorf("%s: Matches(%v) = %v, want %v", c.name, c.filter, got, c.want)
		}
	}
}

// TestFindWithEdgeFilters drives the same edge cases through a real
// collection, confirming the query layer inherits filter semantics.
func TestFindWithEdgeFilters(t *testing.T) {
	db := MustOpen(t.TempDir())
	defer db.Close()
	col := db.Collection("runs")
	if _, err := col.InsertOne(runDoc()); err != nil {
		t.Fatal(err)
	}
	if _, err := col.InsertOne(Doc{"_id": "r2", "name": "boot-2", "status": "failed"}); err != nil {
		t.Fatal(err)
	}

	if n := len(col.Find(Doc{"artifacts.gem5": "a-gem5"})); n != 1 {
		t.Errorf("nested filter matched %d docs, want 1", n)
	}
	if n := len(col.Find(Doc{"insts": Doc{"$exists": false}})); n != 1 {
		t.Errorf("$exists:false matched %d docs, want 1", n)
	}
	if n := len(col.Find(Doc{"insts": Doc{"$gt": "not-a-number"}})); n != 0 {
		t.Errorf("type-mismatched $gt matched %d docs, want 0", n)
	}
	if n := col.Count(Doc{"status": Doc{"$in": []any{"done", "failed"}}}); n != 2 {
		t.Errorf("$in matched %d docs, want 2", n)
	}
}
