package database

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"gem5art/internal/database/storage"
)

// Background integrity scrubbing: reproducibility rests on artifacts
// and journals surviving exactly as recorded, so the engine re-reads
// its own durable state on a cadence and verifies it — journal CRC
// framing, snapshot JSON parse, blob content hashes — instead of
// discovering bit rot the day a result is re-derived from it.
//
// Corrupt blobs are quarantined: moved to <dir>/quarantine/ and
// evicted from memory so they are never served again, then repaired in
// place when a RepairSource (the shard standby's file store, wired by
// shard.Fleet) still holds a good copy. Journal and snapshot damage is
// reported, not rewritten — the journal's torn-tail truncation at the
// next open is the recovery path for those.

// RepairSource supplies known-good blob content by hash — typically
// the replicated standby of a shard. Ok is false when the source has
// no (valid) copy.
type RepairSource interface {
	Blob(hash string) (data []byte, ok bool)
}

// FileRepair adapts a storage.FileStore (e.g. a standby's Files()) to
// a RepairSource, re-verifying content against its hash so a corrupt
// replica can never "repair" a primary.
func FileRepair(fs FileStore) RepairSource { return fileRepair{fs} }

type fileRepair struct{ fs FileStore }

func (r fileRepair) Blob(hash string) ([]byte, bool) {
	if r.fs == nil {
		return nil, false
	}
	data, err := r.fs.Get(hash)
	if err != nil || storage.HashBytes(data) != hash {
		return nil, false
	}
	return data, true
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	// LockWait is time spent blocked behind collection writers (a
	// compaction holds the collection lock for its whole snapshot
	// write). It is part of Duration but is idle waiting, not
	// verification work charged to the store.
	LockWait time.Duration `json:"lock_wait"`

	Collections    int `json:"collections"`
	JournalRecords int `json:"journal_records"` // valid records seen across journals
	TornJournals   int `json:"torn_journals"`   // journals with bytes past the valid prefix
	BadSnapshots   int `json:"bad_snapshots"`   // snapshot files that fail to parse

	Blobs       int      `json:"blobs"`
	Corrupt     int      `json:"corrupt"`               // blobs whose content no longer matches their hash
	Quarantined []string `json:"quarantined,omitempty"` // hashes moved to <dir>/quarantine/
	Repaired    []string `json:"repaired,omitempty"`    // hashes restored from the repair source

	Degraded string `json:"degraded,omitempty"` // the store's degraded reason, if any
}

// Scrub walks the store's durable state once, verifying journals,
// snapshots, and blob content hashes. Corrupt blobs are quarantined
// (and repaired from source when possible); structural journal or
// snapshot damage is counted for the report. In-memory stores scrub
// trivially clean.
func (db *DB) Scrub(source RepairSource) *ScrubReport {
	return db.scrubWith(source, nil)
}

// scrubProgress remembers what earlier passes verified, so the
// periodic scrubber only pays for bytes it has not seen: journals are
// verified from the last validated prefix (invalidated by the writer's
// generation whenever compaction resets the file), and blobs —
// content-addressed and immutable — are hashed once per process. A
// full pass (nil progress) re-reads everything and is the periodic
// backstop against rot in already-verified bytes.
type scrubProgress struct {
	journals map[string]journalMark
	blobs    map[string]bool
	buf      []byte // reused tail-read buffer; keeps passes allocation-quiet
}

type journalMark struct {
	gen    uint64
	offset int64 // verified valid-prefix bytes
	snapOK bool  // snapshot parsed clean at this generation
}

func newScrubProgress() *scrubProgress {
	return &scrubProgress{journals: make(map[string]journalMark), blobs: make(map[string]bool)}
}

// scrubWith is Scrub with optional incremental progress.
func (db *DB) scrubWith(source RepairSource, prog *scrubProgress) *ScrubReport {
	start := time.Now()
	rep := &ScrubReport{Start: start.UTC()}
	defer func() {
		rep.Duration = time.Since(start)
		scrubRuns.Inc()
		scrubLastUnix.Set(float64(time.Now().Unix()))
	}()
	if err := db.Degraded(); err != nil {
		if deg, ok := err.(*storage.DegradedError); ok {
			rep.Degraded = deg.Reason
		} else {
			rep.Degraded = err.Error()
		}
	}
	if db.dir == "" {
		return rep
	}
	db.scrubCollections(rep, prog)
	db.scrubBlobs(rep, source, prog)
	return rep
}

// scrubCollections re-reads every collection's journal and snapshot
// from disk and verifies their structure. The collection lock is held
// per collection so the on-disk bytes are a stable prefix.
func (db *DB) scrubCollections(rep *ScrubReport, prog *scrubProgress) {
	fs := db.fs()
	var scratch []byte
	bufp := &scratch
	if prog != nil {
		bufp = &prog.buf
	}
	for _, c := range db.snapshot() {
		lockStart := time.Now()
		c.mu.RLock()
		rep.LockWait += time.Since(lockStart)
		name := c.name
		var journalSize int64 = -1
		var journalGen uint64
		var snapFresh bool
		if c.journal != nil {
			journalSize = c.journal.size
			journalGen = c.journal.gen
			snapFresh = c.journal.snapGen != 0 && c.journal.snapGen == journalGen
		}
		c.mu.RUnlock()
		rep.Collections++

		// Journal: every line up to the writer's acknowledged extent must
		// frame-validate. Bytes past the valid prefix are a torn tail —
		// expected only after a crash or an injected torn write. An
		// incremental pass resumes from the last validated prefix —
		// reading only the unseen tail — provided the writer's
		// generation still matches (compaction resets the file and bumps
		// the generation).
		var start int64
		var snapVerified bool
		if prog != nil && journalSize >= 0 {
			// An offset past the acknowledged extent means the writer
			// rewound a failed append since the last pass — re-verify from
			// the top.
			if m, ok := prog.journals[name]; ok && m.gen == journalGen && m.offset <= journalSize {
				start = m.offset
				snapVerified = m.snapOK
			}
			// Right after a compaction the snapshot on disk is bytes this
			// process wrote, fsynced, and renamed moments ago — re-reading
			// them detects nothing a full pass wouldn't. Incremental passes
			// trust the fresh snapshot; rot is the full pass's job.
			if !snapVerified && snapFresh {
				snapVerified = true
			}
		}
		// Verification stops at the writer's acknowledged extent: bytes
		// beyond it are appends in flight, not torn tails, and reading
		// them would spuriously fail the pass (and forfeit its progress)
		// whenever the scrubber races a writer. Incremental passes are
		// additionally bandwidth-throttled so a write-heavy store never
		// pays more than scrubTailBudget of verification IO per pass —
		// the offset carries the remainder to the next pass.
		extent := journalSize
		if prog != nil && journalSize >= 0 && journalSize-start > scrubTailBudget {
			extent = start + scrubTailBudget
		}
		journalClean := false
		torn := false
		if tail, size, err := readJournalTail(fs, journalPath(db.dir, name), start, extent, bufp); err == nil {
			valid, good, corrupt := countValidRecords(tail)
			good += start
			rep.JournalRecords += valid
			capped := extent >= 0 && extent < journalSize
			switch {
			case corrupt:
				// A complete line inside the acknowledged extent failed its
				// CRC frame: committed records were damaged.
				torn = true
			case good < size || (extent >= 0 && good < extent):
				if capped {
					// The bandwidth budget cut a record mid-line; it is the
					// next pass's first record, not a torn tail.
					journalClean = true
					start = good
				} else {
					// Shorter than the writer's acknowledged extent:
					// committed records are missing.
					torn = true
				}
			default:
				journalClean = true
				start = good
			}
		}
		if torn {
			// A compaction can reset the file between capturing the
			// writer's extent and reading it; re-check the generation
			// before declaring damage.
			lockStart = time.Now()
			c.mu.RLock()
			rep.LockWait += time.Since(lockStart)
			stale := c.journal != nil && c.journal.gen != journalGen
			c.mu.RUnlock()
			if !stale {
				rep.TornJournals++
				scrubCorrupt.With("journal").Inc()
			}
		}

		// Snapshot: every line must parse as a JSON document. The file
		// is immutable between compactions — and a compaction bumps the
		// journal generation — so a clean parse is cached per generation.
		if !snapVerified {
			snapPath := filepath.Join(db.dir, "collections", name+".jsonl")
			snapVerified = true
			if data, err := fs.ReadFile(snapPath); err == nil {
				if !snapshotParses(data) {
					rep.BadSnapshots++
					scrubCorrupt.With("snapshot").Inc()
					snapVerified = false
				}
			}
		}
		if prog != nil && journalSize >= 0 && journalClean {
			prog.journals[name] = journalMark{gen: journalGen, offset: start, snapOK: snapVerified}
		}
	}
}

// countValidRecords frames data and returns the number of valid
// records plus the byte length of the valid prefix. Validation is the
// CRC frame only — the checksum attests the payload bytes, and the
// payload parsed as JSON when it was written — so a scrub pass costs a
// checksum per record, not a full decode. corrupt reports whether the
// scan stopped at a complete line that failed its frame (damage), as
// opposed to running out of bytes mid-line (a cut or torn tail).
func countValidRecords(data []byte) (valid int, good int64, corrupt bool) {
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break
		}
		if !validJournalFrame(data[:nl]) {
			return valid, good, true
		}
		valid++
		good += int64(nl + 1)
		data = data[nl+1:]
	}
	return valid, good, false
}

// readJournalTail reads the journal's bytes from offset start up to
// extent (the writer's acknowledged size; extent < 0 reads to EOF) and
// reports the absolute offset covered. start 0 is a full read; an
// incremental pass passes its validated prefix so the verified bytes
// are never re-read. buf is a reusable scratch buffer (grown as
// needed) so repeated passes do not allocate.
func readJournalTail(fs storage.FS, path string, start, extent int64, buf *[]byte) (tail []byte, size int64, err error) {
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	if _, err := f.Seek(start, 0); err != nil {
		return nil, 0, err
	}
	if extent < 0 {
		tail, err = io.ReadAll(f)
		if err != nil {
			return nil, 0, err
		}
		return tail, start + int64(len(tail)), nil
	}
	want := int(extent - start)
	if want < 0 {
		want = 0
	}
	if cap(*buf) < want {
		*buf = make([]byte, want)
	}
	b := (*buf)[:want]
	n, err := io.ReadFull(f, b)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		err = nil // the file is shorter than the acknowledged extent:
		// the caller's torn-tail accounting handles it
	}
	if err != nil {
		return nil, 0, err
	}
	return b[:n], start + int64(n), nil
}

// scrubTailBudget caps how many new journal bytes one incremental
// pass verifies per collection — scrub bandwidth is throttled so
// continuous verification never competes seriously with foreground
// writes; the unverified remainder carries over via the progress
// offset and is caught up on quieter passes (or the periodic full
// pass).
const scrubTailBudget = 256 << 10

// validJournalFrame reports whether one journal line's CRC matches its
// payload (the cheap half of decodeJournalLine). The hex prefix is
// decoded by hand to keep the per-record cost allocation-free.
func validJournalFrame(line []byte) bool {
	if len(line) < 9 || line[8] != ' ' {
		return false
	}
	var want uint32
	for _, ch := range line[:8] {
		var v uint32
		switch {
		case ch >= '0' && ch <= '9':
			v = uint32(ch - '0')
		case ch >= 'a' && ch <= 'f':
			v = uint32(ch-'a') + 10
		default:
			return false
		}
		want = want<<4 | v
	}
	return crc32.ChecksumIEEE(line[9:]) == want
}

// snapshotParses verifies every snapshot line is well-formed JSON.
// json.Valid is a pure syntax scan — no allocation, roughly an order
// of magnitude cheaper than unmarshaling — which is what keeps
// re-verifying a freshly-compacted snapshot off the write path's back.
func snapshotParses(data []byte) bool {
	for _, line := range bytes.Split(data, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		if !json.Valid(line) {
			return false
		}
	}
	return true
}

// scrubBlobs re-reads every blob from disk and verifies its content
// hash (handling the legacy base64 format). Corrupt blobs are
// quarantined and, when the source has a good copy, rewritten.
func (db *DB) scrubBlobs(rep *ScrubReport, source RepairSource, prog *scrubProgress) {
	filesDir := filepath.Join(db.dir, "files")
	for _, hash := range db.files.hashes() {
		if prog != nil && prog.blobs[hash] {
			continue // content-addressed and already verified this process
		}
		rep.Blobs++
		scrubScanned.Inc()
		raw, err := db.fs().ReadFile(filepath.Join(filesDir, hash+".blob"))
		ok := err == nil && blobMatches(raw, hash)
		if ok {
			if prog != nil {
				prog.blobs[hash] = true
			}
			continue
		}
		rep.Corrupt++
		scrubCorrupt.With("blob").Inc()
		meta, _ := db.files.Stat(hash)
		db.quarantineBlob(hash)
		rep.Quarantined = append(rep.Quarantined, hash)
		if source != nil {
			if data, good := source.Blob(hash); good {
				if err := writeBlob(db.fs(), filesDir, &FileMeta{
					Name: meta.Name, Hash: hash, Length: len(data),
					Chunks: (len(data) + chunkSize - 1) / chunkSize,
				}, data); err == nil {
					// Re-admit through Put so the in-memory chunking and
					// persistence bookkeeping are rebuilt consistently.
					db.files.evict(hash)
					if _, err := db.files.Put(meta.Name, data); err == nil {
						rep.Repaired = append(rep.Repaired, hash)
						scrubRepaired.Inc()
					}
				}
			}
		}
	}
}

// blobMatches verifies raw against its content hash, accepting the
// legacy base64 on-disk format.
func blobMatches(raw []byte, hash string) bool {
	if storage.HashBytes(raw) == hash {
		return true
	}
	dec, err := base64.StdEncoding.DecodeString(strings.TrimSpace(string(raw)))
	return err == nil && storage.HashBytes(dec) == hash
}

// quarantineBlob moves a corrupt blob (and its meta) into
// <dir>/quarantine/ and evicts it from memory, so it is never served
// and never mistaken for good content by a future load — but remains
// available for forensics.
func (db *DB) quarantineBlob(hash string) {
	db.files.evict(hash)
	if db.dir == "" {
		return
	}
	fs := db.fs()
	qdir := filepath.Join(db.dir, "quarantine")
	if err := fs.MkdirAll(qdir, 0o755); err != nil {
		return
	}
	filesDir := filepath.Join(db.dir, "files")
	for _, ext := range []string{".blob", ".meta"} {
		src := filepath.Join(filesDir, hash+ext)
		if _, err := fs.ReadFile(src); err != nil && os.IsNotExist(err) {
			continue
		}
		if err := fs.Rename(src, filepath.Join(qdir, hash+ext)); err != nil {
			_ = fs.Remove(src) // rename across a faulted path: at least stop serving it
		}
	}
	scrubQuarantined.Inc()
}

// Scrubber runs Scrub on an interval in the background. The zero
// interval scrubs every 5 minutes.
type Scrubber struct {
	db     *DB
	source RepairSource

	mu   sync.Mutex
	last *ScrubReport

	// runMu serializes scrub passes; prog and passes are owned by the
	// pass holding it. Every fullScrubEvery-th pass drops the progress
	// and re-reads everything — the backstop against rot in bytes an
	// incremental pass would skip.
	runMu  sync.Mutex
	prog   *scrubProgress
	passes int

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// fullScrubEvery is how often the background scrubber discards its
// incremental progress and re-verifies the entire store.
const fullScrubEvery = 16

// StartScrubber launches a background integrity scrubber over db.
// source may be nil (no repair path — quarantine only).
func StartScrubber(db *DB, interval time.Duration, source RepairSource) *Scrubber {
	if interval <= 0 {
		interval = 5 * time.Minute
	}
	s := &Scrubber{db: db, source: source, stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.ScrubNow()
			}
		}
	}()
	return s
}

// ScrubNow runs one synchronous scrub pass and records it as the last
// report. Most passes are incremental (new journal bytes, unseen
// blobs); every fullScrubEvery-th pass re-reads the whole store.
func (s *Scrubber) ScrubNow() *ScrubReport {
	s.runMu.Lock()
	if s.passes%fullScrubEvery == 0 || s.prog == nil {
		s.prog = newScrubProgress()
	}
	s.passes++
	rep := s.db.scrubWith(s.source, s.prog)
	s.runMu.Unlock()
	s.mu.Lock()
	s.last = rep
	s.mu.Unlock()
	return rep
}

// LastReport returns the most recent scrub report, or nil before the
// first pass.
func (s *Scrubber) LastReport() *ScrubReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Close stops the background loop and waits for it to exit.
func (s *Scrubber) Close() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
}

// WriteScrubReport writes a scrub report as JSON under dir, for the
// chaos-artifact uploads. Returns the file path.
func WriteScrubReport(dir, name string, rep *ScrubReport) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("scrub-%s.json", name))
	return path, os.WriteFile(path, data, 0o644)
}
