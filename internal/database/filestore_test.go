package database

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestFileStoreReadsLegacyBase64Blobs: databases written before the raw
// blob format stored base64 text; they must load transparently.
func TestFileStoreReadsLegacyBase64Blobs(t *testing.T) {
	dir := t.TempDir()
	content := []byte("legacy vmlinux bytes")
	hash := HashBytes(content)
	files := filepath.Join(dir, "files")
	if err := os.MkdirAll(files, 0o755); err != nil {
		t.Fatal(err)
	}
	enc := base64.StdEncoding.EncodeToString(content)
	if err := os.WriteFile(filepath.Join(files, hash+".blob"), []byte(enc), 0o644); err != nil {
		t.Fatal(err)
	}
	meta, _ := json.Marshal(FileMeta{Name: "vmlinux", Hash: hash, Length: len(content), Chunks: 1})
	if err := os.WriteFile(filepath.Join(files, hash+".meta"), meta, 0o644); err != nil {
		t.Fatal(err)
	}

	db := MustOpen(dir)
	defer db.Close()
	got, err := db.Files().Get(hash)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("legacy blob read back as %q", got)
	}
	m, ok := db.Files().Stat(hash)
	if !ok || m.Name != "vmlinux" {
		t.Fatalf("legacy meta = %+v, %v", m, ok)
	}
	// The legacy blob must not be rewritten just because we opened it.
	raw, err := os.ReadFile(filepath.Join(files, hash+".blob"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, []byte(enc)) {
		t.Fatal("open rewrote a legacy blob")
	}
}

// TestFileStoreWritesRawBlobs: new blobs are written through at Put time
// as raw bytes, durable before any Flush.
func TestFileStoreWritesRawBlobs(t *testing.T) {
	dir := t.TempDir()
	db := MustOpen(dir)
	content := []byte{0x7f, 'E', 'L', 'F', 0, 1, 2, 3} // binary, not base64-safe
	hash, _ := db.Files().Put("kernel", content)
	raw, err := os.ReadFile(filepath.Join(dir, "files", hash+".blob"))
	if err != nil {
		t.Fatalf("blob not written through at Put: %v", err)
	}
	if !bytes.Equal(raw, content) {
		t.Fatalf("blob on disk is %q, want raw bytes", raw)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := MustOpen(dir)
	defer db2.Close()
	got, err := db2.Files().Get(hash)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("raw blob lost across reopen")
	}
}
