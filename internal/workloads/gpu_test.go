package workloads

import (
	"testing"

	"gem5art/internal/sim/gpu"
)

func TestTable4Has29Workloads(t *testing.T) {
	ws := GPUWorkloads()
	if len(ws) != 29 {
		t.Fatalf("%d GPU workloads, want 29 (Table IV)", len(ws))
	}
	suites := map[string]int{}
	for _, w := range ws {
		suites[w.Suite]++
		if w.Input == "" {
			t.Errorf("%s has no input size", w.Kernel.Name)
		}
	}
	if suites["hip-samples"] != 8 || suites["heterosync"] != 8 ||
		suites["dnnmark"] != 10 || suites["doe-proxy"] != 3 {
		t.Fatalf("suite sizes: %v", suites)
	}
}

func TestAllKernelsValidate(t *testing.T) {
	for _, w := range GPUWorkloads() {
		if err := w.Kernel.Validate(gpu.Config{}); err != nil {
			t.Errorf("%s: %v", w.Kernel.Name, err)
		}
	}
}

func TestFindGPUWorkload(t *testing.T) {
	w, err := FindGPUWorkload("FAMutex")
	if err != nil {
		t.Fatal(err)
	}
	if w.Suite != "heterosync" {
		t.Fatalf("FAMutex suite = %s", w.Suite)
	}
	if _, err := FindGPUWorkload("nonexistent"); err == nil {
		t.Fatal("found a nonexistent workload")
	}
}

// TestFigure9Shape verifies the headline result of use case 3: the
// dynamic register allocator loses on average (simple wins by ~8%),
// FAMutex and the pooling layers suffer badly under dynamic, while the
// large latency-bound kernels benefit from it.
func TestFigure9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("58 GPU simulations")
	}
	speedups := map[string]float64{}
	for _, w := range GPUWorkloads() {
		sp, err := gpu.Speedup(gpu.Config{}, w.Kernel)
		if err != nil {
			t.Fatalf("%s: %v", w.Kernel.Name, err)
		}
		speedups[w.Kernel.Name] = sp
	}

	// Per-app signs from §VI-C.
	if sp := speedups["FAMutex"]; sp > 0.75 || sp < 0.45 {
		t.Errorf("FAMutex dynamic speedup = %.3f, want ~0.62 (61%% worse)", sp)
	}
	for _, pool := range []string{"fwd_pool", "bwd_pool"} {
		if sp := speedups[pool]; sp > 0.90 || sp < 0.72 {
			t.Errorf("%s dynamic speedup = %.3f, want ~0.82 (22%% worse)", pool, sp)
		}
	}
	for _, winner := range []string{"inline_asm", "MatrixTranspose", "stream", "PENNANT"} {
		if sp := speedups[winner]; sp < 1.10 {
			t.Errorf("%s dynamic speedup = %.3f, want > 1.10", winner, sp)
		}
	}
	for _, flat := range []string{"2dshfl", "shfl", "unroll", "HACC", "LULESH"} {
		if sp := speedups[flat]; sp < 0.9 || sp > 1.1 {
			t.Errorf("%s dynamic speedup = %.3f, want ~1.0 (little difference)", flat, sp)
		}
	}
	for _, mtx := range []string{"SpinMutexEBO", "SleepMutex", "SpinMutexEBOUniq",
		"FAMutexUniq", "SleepMutexUniq"} {
		if sp := speedups[mtx]; sp >= 1.0 {
			t.Errorf("%s dynamic speedup = %.3f, want < 1 (HeteroSync suffers)", mtx, sp)
		}
	}

	// Headline: "on average the simple register allocator improves GPU
	// performance by 8% compared to the dynamic register allocator" —
	// the mean of simple's per-app relative performance (1/speedup).
	var simpleAdvantage float64
	for _, sp := range speedups {
		simpleAdvantage += 1 / sp
	}
	meanAdv := simpleAdvantage / float64(len(speedups))
	t.Logf("mean simple-over-dynamic performance = %.3f (paper: 1.08)", meanAdv)
	if meanAdv < 1.02 || meanAdv > 1.15 {
		t.Errorf("mean simple advantage = %.3f, want ~1.08", meanAdv)
	}
}

func TestGPUWorkloadNamesOrdered(t *testing.T) {
	names := GPUWorkloadNames()
	if len(names) != 29 || names[0] != "2dshfl" || names[28] != "PENNANT" {
		t.Fatalf("names: %v", names)
	}
}
