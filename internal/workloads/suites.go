package workloads

import (
	"fmt"

	"gem5art/internal/sim/isa"
)

// This file provides synthetic generators for the remaining benchmark
// suites gem5-resources carries (Table I): NPB, GAPBS, SPEC CPU, and the
// boot-exit test workload. They exist so the resource catalog's disk
// images contain real executables and so users can run suites beyond
// PARSEC through the same pipeline.

// NPBClass is an NPB problem class (S, A, B...); it scales iterations.
type NPBClass string

// NPB classes supported by the generator.
const (
	NPBClassS NPBClass = "S"
	NPBClassA NPBClass = "A"
	NPBClassB NPBClass = "B"
)

func npbScale(c NPBClass) int64 {
	switch c {
	case NPBClassA:
		return 4
	case NPBClassB:
		return 16
	default:
		return 1
	}
}

// NPBKernels lists the NAS Parallel Benchmark kernels modeled.
var NPBKernels = []string{"bt", "cg", "ep", "ft", "is", "lu", "mg", "sp", "ua"}

// NPBProgram generates one NPB kernel for one thread.
func NPBProgram(kernel string, class NPBClass, core int) (*isa.Program, error) {
	profiles := map[string]isa.GenSpec{
		"bt": {BodyOps: 48, Mix: isa.Mix{Load: 0.28, Store: 0.12, MulDiv: 0.18}, FootprintWords: 1 << 15, StrideWords: 3},
		"cg": {BodyOps: 40, Mix: isa.Mix{Load: 0.40, Store: 0.08, MulDiv: 0.10}, FootprintWords: 1 << 17, StrideWords: 13},
		"ep": {BodyOps: 44, Mix: isa.Mix{MulDiv: 0.30, Branch: 0.08}, FootprintWords: 1 << 10, StrideWords: 1},
		"ft": {BodyOps: 46, Mix: isa.Mix{Load: 0.30, Store: 0.16, MulDiv: 0.16}, FootprintWords: 1 << 16, StrideWords: 8},
		"is": {BodyOps: 36, Mix: isa.Mix{Load: 0.34, Store: 0.20, Branch: 0.10}, FootprintWords: 1 << 16, StrideWords: 17},
		"lu": {BodyOps: 48, Mix: isa.Mix{Load: 0.30, Store: 0.12, MulDiv: 0.14}, FootprintWords: 1 << 15, StrideWords: 5},
		"mg": {BodyOps: 42, Mix: isa.Mix{Load: 0.36, Store: 0.14, MulDiv: 0.08}, FootprintWords: 1 << 17, StrideWords: 9},
		"sp": {BodyOps: 46, Mix: isa.Mix{Load: 0.28, Store: 0.14, MulDiv: 0.16}, FootprintWords: 1 << 15, StrideWords: 4},
		"ua": {BodyOps: 44, Mix: isa.Mix{Load: 0.30, Store: 0.12, MulDiv: 0.12, Branch: 0.08}, FootprintWords: 1 << 15, StrideWords: 11},
	}
	spec, ok := profiles[kernel]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown NPB kernel %q", kernel)
	}
	spec.Name = fmt.Sprintf("npb-%s-%s-c%d", kernel, class, core)
	spec.Seed = int64(len(kernel))*7919 + int64(core) + npbScale(class)
	spec.Iterations = 800 * npbScale(class)
	spec.SharedWords = 8
	return isa.Generate(spec), nil
}

// GAPBSKernels lists the GAP Benchmark Suite kernels modeled.
var GAPBSKernels = []string{"bc", "bfs", "cc", "pr", "sssp", "tc"}

// GAPBSProgram generates one GAPBS kernel: graph workloads are dominated
// by irregular pointer-chasing loads with poor locality.
func GAPBSProgram(kernel string, scale int, core int) (*isa.Program, error) {
	valid := false
	for _, k := range GAPBSKernels {
		if k == kernel {
			valid = true
			break
		}
	}
	if !valid {
		return nil, fmt.Errorf("workloads: unknown GAPBS kernel %q", kernel)
	}
	if scale < 1 {
		scale = 1
	}
	return isa.Generate(isa.GenSpec{
		Name:           fmt.Sprintf("gapbs-%s-g%d-c%d", kernel, scale, core),
		Seed:           int64(len(kernel))*104729 + int64(core),
		Iterations:     int64(600 * scale),
		BodyOps:        36,
		Mix:            isa.Mix{Load: 0.45, Store: 0.06, Branch: 0.16, Atomic: 0.01},
		FootprintWords: 1 << (16 + scale%4),
		StrideWords:    31, // irregular access
		SharedWords:    16,
	}), nil
}

// SPECBenchmarks lists modeled SPEC CPU workload names (a representative
// subset; the resource's licensing gate is what matters to the catalog).
var SPECBenchmarks = []string{"perlbench", "gcc", "mcf", "omnetpp", "x264", "xz"}

// SPECProgram generates a single-threaded SPEC-style workload.
func SPECProgram(name string, core int) (*isa.Program, error) {
	profiles := map[string]isa.GenSpec{
		"perlbench": {BodyOps: 40, Mix: isa.Mix{Load: 0.28, Store: 0.12, Branch: 0.18}, FootprintWords: 1 << 14, StrideWords: 5},
		"gcc":       {BodyOps: 44, Mix: isa.Mix{Load: 0.30, Store: 0.12, Branch: 0.16}, FootprintWords: 1 << 15, StrideWords: 7},
		"mcf":       {BodyOps: 36, Mix: isa.Mix{Load: 0.44, Store: 0.08, Branch: 0.10}, FootprintWords: 1 << 18, StrideWords: 29},
		"omnetpp":   {BodyOps: 40, Mix: isa.Mix{Load: 0.36, Store: 0.14, Branch: 0.14}, FootprintWords: 1 << 16, StrideWords: 13},
		"x264":      {BodyOps: 48, Mix: isa.Mix{Load: 0.26, Store: 0.12, MulDiv: 0.18}, FootprintWords: 1 << 14, StrideWords: 2},
		"xz":        {BodyOps: 38, Mix: isa.Mix{Load: 0.32, Store: 0.16, Branch: 0.12}, FootprintWords: 1 << 15, StrideWords: 3},
	}
	spec, ok := profiles[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown SPEC benchmark %q", name)
	}
	spec.Name = fmt.Sprintf("spec-%s-c%d", name, core)
	spec.Seed = int64(len(name))*31337 + int64(core)
	spec.Iterations = 1200
	return isa.Generate(spec), nil
}

// BootExitProgram is the boot-exit test resource's workload: the minimal
// "boot the kernel, exit via m5" program.
func BootExitProgram() *isa.Program {
	return isa.Generate(isa.GenSpec{
		Name:           "boot-exit",
		Seed:           42,
		Iterations:     300,
		BodyOps:        48,
		Mix:            isa.Mix{Load: 0.25, Store: 0.12, Branch: 0.15, MulDiv: 0.02, Atomic: 0.02},
		FootprintWords: 1 << 15,
		StrideWords:    7,
		SharedWords:    16,
	})
}
