// Package workloads models the benchmark suites the paper's use cases
// run: the PARSEC multithreaded applications on two Ubuntu LTS userlands
// (use case 1, Figures 6–7), the Linux boot workload (use case 2), the
// Table IV GPU kernels (use case 3, Figure 9), and synthetic NPB/GAPBS
// generators for the remaining gem5-resources suites.
//
// Each CPU workload is expressed as deterministic GenSpecs — real
// instruction streams executed by the CPU and memory models — so run
// time emerges from simulation rather than closed-form math.
package workloads

import (
	"fmt"

	"gem5art/internal/sim/isa"
)

// OSImage describes a disk image's userland generation. The paper's
// use case 1 finding: PARSEC built by Ubuntu 20.04's GCC 9.3 executes
// *more* instructions than 18.04's GCC 7.4 build but at higher CPU
// utilization, netting shorter run time.
type OSImage struct {
	Name       string
	Kernel     string
	GCC        string
	InstFactor float64 // relative dynamic instruction count
	// MemIntensity scales the fraction of memory operations: the newer
	// toolchain keeps more values in registers.
	MemIntensity float64
	// StridePenalty degrades spatial locality for the older toolchain's
	// code layout.
	StridePenalty int64
}

// The two LTS images from Table II.
var (
	Ubuntu1804 = OSImage{
		Name: "ubuntu-18.04", Kernel: "4.15.18", GCC: "7.4",
		InstFactor: 1.0, MemIntensity: 1.08, StridePenalty: 2,
	}
	Ubuntu2004 = OSImage{
		Name: "ubuntu-20.04", Kernel: "5.4.51", GCC: "9.3",
		InstFactor: 1.12, MemIntensity: 1.0, StridePenalty: 0,
	}
)

// OSImages lists both in the order the figures present them.
var OSImages = []OSImage{Ubuntu1804, Ubuntu2004}

// ParsecApp is one PARSEC application with the simmedium input, modeled
// by its parallel structure and instruction mix. The 10 applications are
// the ones use case 1 keeps (x264, facesim and canneal are excluded in
// the paper for runtime bugs).
type ParsecApp struct {
	Name       string
	SerialFrac float64 // Amdahl serial fraction, run on core 0
	BaseIters  int64   // total parallel loop iterations (simmedium)
	BodyOps    int
	Mix        isa.Mix
	Footprint  int64 // private working set per thread, words
	Stride     int64
	SharedSync int64 // shared words hit by atomics (lock/barrier traffic)
	Seed       int64
}

// ParsecApps returns the 10 applications of use case 1 in figure order.
func ParsecApps() []ParsecApp {
	return []ParsecApp{
		{Name: "blackscholes", SerialFrac: 0.02, BaseIters: 5200, BodyOps: 40,
			Mix:       isa.Mix{Load: 0.18, Store: 0.06, MulDiv: 0.22, Branch: 0.06},
			Footprint: 1 << 13, Stride: 1, SharedSync: 4, Seed: 101},
		{Name: "bodytrack", SerialFrac: 0.08, BaseIters: 4600, BodyOps: 44,
			Mix:       isa.Mix{Load: 0.26, Store: 0.10, MulDiv: 0.10, Branch: 0.12, Atomic: 0.01},
			Footprint: 1 << 14, Stride: 2, SharedSync: 8, Seed: 102},
		{Name: "dedup", SerialFrac: 0.13, BaseIters: 5200, BodyOps: 40,
			Mix:       isa.Mix{Load: 0.30, Store: 0.16, MulDiv: 0.04, Branch: 0.10, Atomic: 0.02},
			Footprint: 1 << 16, Stride: 3, SharedSync: 16, Seed: 103},
		{Name: "ferret", SerialFrac: 0.04, BaseIters: 5600, BodyOps: 42,
			Mix:       isa.Mix{Load: 0.24, Store: 0.08, MulDiv: 0.14, Branch: 0.10, Atomic: 0.01},
			Footprint: 1 << 15, Stride: 2, SharedSync: 8, Seed: 104},
		{Name: "fluidanimate", SerialFrac: 0.06, BaseIters: 5000, BodyOps: 46,
			Mix:       isa.Mix{Load: 0.28, Store: 0.14, MulDiv: 0.12, Branch: 0.08, Atomic: 0.02},
			Footprint: 1 << 15, Stride: 2, SharedSync: 32, Seed: 105},
		{Name: "freqmine", SerialFrac: 0.10, BaseIters: 5400, BodyOps: 42,
			Mix:       isa.Mix{Load: 0.32, Store: 0.10, MulDiv: 0.04, Branch: 0.14},
			Footprint: 1 << 16, Stride: 3, SharedSync: 8, Seed: 106},
		{Name: "raytrace", SerialFrac: 0.05, BaseIters: 5800, BodyOps: 44,
			Mix:       isa.Mix{Load: 0.22, Store: 0.06, MulDiv: 0.18, Branch: 0.12},
			Footprint: 1 << 14, Stride: 2, SharedSync: 4, Seed: 107},
		{Name: "streamcluster", SerialFrac: 0.04, BaseIters: 5200, BodyOps: 40,
			Mix:       isa.Mix{Load: 0.36, Store: 0.12, MulDiv: 0.08, Branch: 0.06, Atomic: 0.01},
			Footprint: 1 << 17, Stride: 4, SharedSync: 16, Seed: 108},
		{Name: "swaptions", SerialFrac: 0.01, BaseIters: 5600, BodyOps: 42,
			Mix:       isa.Mix{Load: 0.16, Store: 0.05, MulDiv: 0.24, Branch: 0.06},
			Footprint: 1 << 13, Stride: 1, SharedSync: 4, Seed: 109},
		{Name: "vips", SerialFrac: 0.07, BaseIters: 5000, BodyOps: 44,
			Mix:       isa.Mix{Load: 0.26, Store: 0.12, MulDiv: 0.10, Branch: 0.10, Atomic: 0.01},
			Footprint: 1 << 15, Stride: 2, SharedSync: 8, Seed: 110},
	}
}

// ParsecAppNames returns the application names in figure order.
func ParsecAppNames() []string {
	apps := ParsecApps()
	out := make([]string, len(apps))
	for i, a := range apps {
		out[i] = a.Name
	}
	return out
}

// FindParsec returns the named application.
func FindParsec(name string) (ParsecApp, error) {
	for _, a := range ParsecApps() {
		if a.Name == name {
			return a, nil
		}
	}
	return ParsecApp{}, fmt.Errorf("workloads: unknown PARSEC application %q", name)
}

// Programs builds the per-core instruction streams for one run of the
// application on the given OS image with the given thread count. Core 0
// runs the serial section plus its share of parallel work; every core
// pays a per-thread synchronization overhead that grows with the thread
// count (lock and barrier traffic through shared lines).
func (a ParsecApp) Programs(os OSImage, cores int) []*isa.Program {
	if cores < 1 {
		cores = 1
	}
	mix := a.Mix
	mix.Load *= os.MemIntensity
	mix.Store *= os.MemIntensity
	totalIters := float64(a.BaseIters) * os.InstFactor
	serial := int64(totalIters * a.SerialFrac)
	parallel := int64(totalIters) - serial
	perCore := parallel / int64(cores)

	// Thread management overhead appears once threads exist, and the
	// shared-line sync traffic intensifies slightly with more threads.
	syncMix := mix
	if cores > 1 {
		syncMix.Atomic += 0.01 * float64(cores-1) / 7.0
	}

	progs := make([]*isa.Program, cores)
	for core := 0; core < cores; core++ {
		iters := perCore
		if core == 0 {
			iters += serial + parallel%int64(cores)
		}
		if iters < 1 {
			iters = 1
		}
		progs[core] = isa.Generate(isa.GenSpec{
			Name:           fmt.Sprintf("parsec-%s-%s-c%d", a.Name, os.Name, core),
			Seed:           a.Seed*1000 + int64(core),
			Iterations:     iters,
			BodyOps:        a.BodyOps,
			Mix:            syncMix,
			FootprintWords: a.Footprint,
			StrideWords:    a.Stride + os.StridePenalty,
			SharedWords:    a.SharedSync,
		})
	}
	return progs
}
