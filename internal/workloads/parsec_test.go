package workloads

import (
	"testing"

	"gem5art/internal/sim/isa"
)

func TestTenParsecApps(t *testing.T) {
	apps := ParsecApps()
	if len(apps) != 10 {
		t.Fatalf("%d PARSEC apps, want 10 (x264, facesim, canneal excluded)", len(apps))
	}
	want := []string{"blackscholes", "bodytrack", "dedup", "ferret", "fluidanimate",
		"freqmine", "raytrace", "streamcluster", "swaptions", "vips"}
	for i, name := range ParsecAppNames() {
		if name != want[i] {
			t.Fatalf("app %d = %s, want %s", i, name, want[i])
		}
	}
	for _, excluded := range []string{"x264", "facesim", "canneal"} {
		if _, err := FindParsec(excluded); err == nil {
			t.Fatalf("%s should be excluded", excluded)
		}
	}
}

func TestProgramsValidate(t *testing.T) {
	for _, app := range ParsecApps() {
		for _, os := range OSImages {
			for _, cores := range ParsecCoreCounts {
				progs := app.Programs(os, cores)
				if len(progs) != cores {
					t.Fatalf("%s: %d programs for %d cores", app.Name, len(progs), cores)
				}
				for _, p := range progs {
					if err := isa.Validate(p); err != nil {
						t.Fatalf("%s: %v", app.Name, err)
					}
				}
			}
		}
	}
}

func TestUbuntu2004ExecutesMoreInstructions(t *testing.T) {
	// §VI-A: "PARSEC running in Ubuntu 20.04 was executing significantly
	// more instructions, but at a higher CPU utilization rate."
	app, err := FindParsec("blackscholes")
	if err != nil {
		t.Fatal(err)
	}
	m18, err := ExecParsec(app, Ubuntu1804, 1)
	if err != nil {
		t.Fatal(err)
	}
	m20, err := ExecParsec(app, Ubuntu2004, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m20.Insts <= m18.Insts {
		t.Fatalf("20.04 insts (%d) not above 18.04 (%d)", m20.Insts, m18.Insts)
	}
	if m20.IPC <= m18.IPC {
		t.Fatalf("20.04 IPC (%.3f) not above 18.04 (%.3f)", m20.IPC, m18.IPC)
	}
}

func TestFigure6Shape(t *testing.T) {
	// Applications typically take longer on Ubuntu 18.04, and the gap
	// narrows as cores increase. Assert on the majority rather than every
	// app — the paper's Figure 6 also shows outliers.
	if testing.Short() {
		t.Skip("full 60-run sweep")
	}
	slower1, slowerN := 0, 0
	var gap1, gap8 float64
	for _, app := range ParsecApps() {
		m18c1, err := ExecParsec(app, Ubuntu1804, 1)
		if err != nil {
			t.Fatal(err)
		}
		m20c1, err := ExecParsec(app, Ubuntu2004, 1)
		if err != nil {
			t.Fatal(err)
		}
		m18c8, err := ExecParsec(app, Ubuntu1804, 8)
		if err != nil {
			t.Fatal(err)
		}
		m20c8, err := ExecParsec(app, Ubuntu2004, 8)
		if err != nil {
			t.Fatal(err)
		}
		if m18c1.SimSeconds > m20c1.SimSeconds {
			slower1++
		}
		if m18c8.SimSeconds > m20c8.SimSeconds {
			slowerN++
		}
		gap1 += m18c1.SimSeconds - m20c1.SimSeconds
		gap8 += m18c8.SimSeconds - m20c8.SimSeconds
	}
	if slower1 < 7 {
		t.Errorf("only %d/10 apps slower on 18.04 at 1 core", slower1)
	}
	if gap8 >= gap1 {
		t.Errorf("absolute 18.04-20.04 gap did not narrow with cores: %.6f -> %.6f", gap1, gap8)
	}
}

func TestFigure7Shape(t *testing.T) {
	// 1->8-core speedup is consistent between the OSes, with 20.04
	// slightly ahead on average, notably blackscholes and ferret.
	if testing.Short() {
		t.Skip("full sweep")
	}
	var sum18, sum20 float64
	for _, name := range []string{"blackscholes", "ferret", "dedup", "streamcluster"} {
		app, err := FindParsec(name)
		if err != nil {
			t.Fatal(err)
		}
		speedup := func(os OSImage) float64 {
			m1, err := ExecParsec(app, os, 1)
			if err != nil {
				t.Fatal(err)
			}
			m8, err := ExecParsec(app, os, 8)
			if err != nil {
				t.Fatal(err)
			}
			return m1.SimSeconds / m8.SimSeconds
		}
		s18, s20 := speedup(Ubuntu1804), speedup(Ubuntu2004)
		if s18 < 1.5 || s20 < 1.5 {
			t.Errorf("%s: speedups too low: 18.04=%.2f 20.04=%.2f", name, s18, s20)
		}
		if s18 > 8 || s20 > 8 {
			t.Errorf("%s: superlinear speedup: %.2f / %.2f", name, s18, s20)
		}
		sum18 += s18
		sum20 += s20
	}
	if sum20 <= sum18 {
		t.Errorf("20.04 mean speedup (%.2f) not above 18.04 (%.2f)", sum20/4, sum18/4)
	}
}

func TestSerialFractionLimitsSpeedup(t *testing.T) {
	// dedup (13% serial) must scale worse than swaptions (1% serial).
	sp := func(name string) float64 {
		app, err := FindParsec(name)
		if err != nil {
			t.Fatal(err)
		}
		m1, err := ExecParsec(app, Ubuntu2004, 1)
		if err != nil {
			t.Fatal(err)
		}
		m8, err := ExecParsec(app, Ubuntu2004, 8)
		if err != nil {
			t.Fatal(err)
		}
		return m1.SimSeconds / m8.SimSeconds
	}
	if sp("dedup") >= sp("swaptions") {
		t.Errorf("dedup speedup %.2f >= swaptions %.2f despite 13x serial fraction",
			sp("dedup"), sp("swaptions"))
	}
}

func TestDeterministicMetrics(t *testing.T) {
	app, err := FindParsec("vips")
	if err != nil {
		t.Fatal(err)
	}
	a, err := ExecParsec(app, Ubuntu1804, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExecParsec(app, Ubuntu1804, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic metrics: %+v vs %+v", a, b)
	}
}
