package workloads

import (
	"fmt"

	"gem5art/internal/sim/gpu"
)

// GPUWorkload pairs a Table IV benchmark with its kernel descriptor and
// the input-size string the paper reports.
type GPUWorkload struct {
	Suite  string // "hip-samples", "heterosync", "dnnmark", "doe-proxy"
	Input  string
	Kernel gpu.KernelDesc
}

// GPUWorkloads returns the 29 benchmarks of use case 3 in Figure 9's
// order. Descriptor parameters encode each application's documented
// character: grid size (whether dynamic can raise occupancy at all),
// synchronization intensity (HeteroSync's contended atomics), dependence
// density (DNNMark's pooling layers), and memory-latency sensitivity
// (inline_asm, MatrixTranspose, stream, PENNANT).
func GPUWorkloads() []GPUWorkload {
	hip := func(name, input string, k gpu.KernelDesc) GPUWorkload {
		k.Name = name
		return GPUWorkload{Suite: "hip-samples", Input: input, Kernel: k}
	}
	hs := func(name string, k gpu.KernelDesc) GPUWorkload {
		k.Name = name
		return GPUWorkload{Suite: "heterosync",
			Input: "10 Ld/St/thr/CS, 8 WGs/CU, 2 iters", Kernel: k}
	}
	dnn := func(name, input string, k gpu.KernelDesc) GPUWorkload {
		k.Name = name
		return GPUWorkload{Suite: "dnnmark", Input: input, Kernel: k}
	}
	doe := func(name, input string, k gpu.KernelDesc) GPUWorkload {
		k.Name = name
		return GPUWorkload{Suite: "doe-proxy", Input: input, Kernel: k}
	}

	// Shared shapes.
	tiny := gpu.KernelDesc{WGs: 2, WavesPerWG: 1, VRegsPerWave: 64,
		OpsPerWave: 160, MemFrac: 0.15, DepDensity: 0.25, Locality: 0.8}
	smallShared := gpu.KernelDesc{WGs: 4, WavesPerWG: 2, VRegsPerWave: 96,
		LDSPerWG: 4096, OpsPerWave: 220, MemFrac: 0.12, LDSFrac: 0.2,
		DepDensity: 0.25, Locality: 0.8}
	bigMem := gpu.KernelDesc{WGs: 96, WavesPerWG: 4, VRegsPerWave: 96,
		OpsPerWave: 260, MemFrac: 0.30, DepDensity: 0.06, Locality: 0.97}
	mutex := gpu.KernelDesc{WGs: 32, WavesPerWG: 4, VRegsPerWave: 64,
		OpsPerWave: 220, MemFrac: 0.10, AtomicFrac: 0.22, DepDensity: 0.25,
		Locality: 0.6}
	mutexUniq := mutex
	mutexUniq.AtomicFrac = 0.12  // per-WG locks contend less
	mutexUniq.AtomicChannels = 2 // locks spread over independent lines
	barrier := gpu.KernelDesc{WGs: 32, WavesPerWG: 4, VRegsPerWave: 512,
		OpsPerWave: 240, MemFrac: 0.12, AtomicFrac: 0.10, DepDensity: 0.5,
		Locality: 0.6, Barriers: 4, AtomicChannels: 2}
	pool := gpu.KernelDesc{WGs: 48, WavesPerWG: 4, VRegsPerWave: 80,
		OpsPerWave: 280, MemFrac: 0.06, DepDensity: 0.62, Locality: 0.9}
	dnnMemLayer := gpu.KernelDesc{WGs: 64, WavesPerWG: 4, VRegsPerWave: 96,
		OpsPerWave: 240, MemFrac: 0.28, DepDensity: 0.10, Locality: 0.97}
	dnnSmall := gpu.KernelDesc{WGs: 4, WavesPerWG: 2, VRegsPerWave: 96,
		OpsPerWave: 200, MemFrac: 0.2, DepDensity: 0.3, Locality: 0.7}
	proxyLimited := gpu.KernelDesc{WGs: 4, WavesPerWG: 4, VRegsPerWave: 128,
		OpsPerWave: 320, MemFrac: 0.25, DepDensity: 0.3, Locality: 0.6}

	ws := []GPUWorkload{
		hip("2dshfl", "4x4", withSeed(tiny, 201)),
		hip("dynamic_shared", "16x16", withSeed(smallShared, 202)),
		hip("inline_asm", "1024x1024", withSeed(bigMem, 203)),
		hip("MatrixTranspose", "1024x1024", withSeed(bigMem, 204)),
		hip("sharedMemory", "64x64", withSeed(smallShared, 205)),
		hip("shfl", "4x4", withSeed(tiny, 206)),
		hip("stream", "32x32", withSeed(bigMemScaled(0.7), 207)),
		hip("unroll", "4x4", withSeed(tiny, 208)),

		hs("SpinMutexEBO", withSeed(mutexScaled(mutex, 0.18), 211)),
		hs("FAMutex", withSeed(mutexScaled(mutex, 0.30), 212)),
		hs("SleepMutex", withSeed(sleepVariant(mutex, 0.10), 213)),
		hs("SpinMutexEBOUniq", withSeed(mutexScaled(mutexUniq, 0.10), 214)),
		hs("FAMutexUniq", withSeed(mutexScaled(mutexUniq, 0.14), 215)),
		hs("SleepMutexUniq", withSeed(mutexScaled(mutexUniq, 0.07), 216)),
		hs("LFTreeBarrUniq", withSeed(barrier, 217)),
		hs("LFTreeBarrUniqLocalExch", withSeed(barrierLocal(barrier), 218)),

		dnn("bwd_bypass", "NCHW = 100, 1000, 1, 1", withSeed(dnnSmall, 221)),
		dnn("bwd_bn", "NCHW = 100, 1000, 1, 1", withSeed(dnnMemLayer, 222)),
		dnn("bwd_composed_model", "NCHW = 32, 32, 3, 1", withSeed(dnnSmall, 223)),
		dnn("bwd_pool", "NCHW = 100, 3, 256, 256", withSeed(pool, 224)),
		dnn("bwd_softmax", "NCHW = 100, 1000, 1, 1", withSeed(dnnMemLayer, 225)),
		dnn("fwd_bypass", "NCHW = 100, 1000, 1, 1", withSeed(dnnSmall, 226)),
		dnn("fwd_bn", "NCHW = 100, 1000, 1, 1", withSeed(dnnMemLayer, 227)),
		dnn("fwd_composed_model", "NCHW = 32, 32, 3, 1", withSeed(dnnSmall, 228)),
		dnn("fwd_pool", "NCHW = 100, 3, 256, 256", withSeed(pool, 229)),
		dnn("fwd_softmax", "NCHW = 100, 1000, 1, 1", withSeed(dnnMemLayer, 230)),

		doe("HACC", "forceTreeTest 0.5 0.1 64 0.1 100 N 12 rcb", withSeed(proxyLimited, 231)),
		doe("LULESH", "1 iteration", withSeed(proxyLimited, 232)),
		doe("PENNANT", "noh", withSeed(bigMemScaled(0.9), 233)),
	}
	return ws
}

func withSeed(k gpu.KernelDesc, seed int64) gpu.KernelDesc {
	k.Seed = seed
	return k
}

func bigMemScaled(scale float64) gpu.KernelDesc {
	k := gpu.KernelDesc{WGs: 96, WavesPerWG: 4, VRegsPerWave: 96,
		OpsPerWave: 260, MemFrac: 0.30, DepDensity: 0.06, Locality: 0.97}
	k.WGs = int(float64(k.WGs) * scale)
	return k
}

func mutexScaled(base gpu.KernelDesc, atomicFrac float64) gpu.KernelDesc {
	base.AtomicFrac = atomicFrac
	return base
}

func sleepVariant(base gpu.KernelDesc, atomicFrac float64) gpu.KernelDesc {
	// Sleep mutexes park waiting waves instead of hammering the line, so
	// contention spreads over two lines' worth of traffic.
	base.AtomicFrac = atomicFrac
	base.AtomicChannels = 2
	return base
}

func barrierLocal(base gpu.KernelDesc) gpu.KernelDesc {
	// The LocalExch variant exchanges through LDS, lowering global
	// traffic.
	base.LDSFrac = 0.2
	base.MemFrac = 0.06
	return base
}

// FindGPUWorkload returns the named Table IV benchmark.
func FindGPUWorkload(name string) (GPUWorkload, error) {
	for _, w := range GPUWorkloads() {
		if w.Kernel.Name == name {
			return w, nil
		}
	}
	return GPUWorkload{}, fmt.Errorf("workloads: unknown GPU benchmark %q", name)
}

// GPUWorkloadNames returns Figure 9's x-axis labels in order.
func GPUWorkloadNames() []string {
	ws := GPUWorkloads()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Kernel.Name
	}
	return out
}
