package workloads

import (
	"fmt"

	"gem5art/internal/sim"
	"gem5art/internal/sim/cpu"
	"gem5art/internal/sim/mem"
)

// ParsecMetrics is the per-run measurement used by Figures 6 and 7.
type ParsecMetrics struct {
	App        string
	OS         string
	Cores      int
	SimSeconds float64
	Insts      uint64
	IPC        float64
}

// ExecParsec runs one PARSEC configuration on the Table II system
// (TimingSimpleCPU, one DDR3 channel, classic hierarchy) and returns its
// metrics. It is the unit of work use case 1 fans out 60 of.
func ExecParsec(app ParsecApp, os OSImage, cores int) (ParsecMetrics, error) {
	// Table II fixes the CPU and DRAM; the cache hierarchy follows the
	// PARSEC run script's defaults (32 KiB L1s, 1 MiB shared L2).
	m := mem.NewClassic(cores, mem.ClassicConfig{L2Bytes: 1 << 20})
	system := cpu.NewSystem(cpu.Config{Model: cpu.Timing, Cores: cores}, m)
	for i, p := range app.Programs(os, cores) {
		system.LoadProgram(i, p)
	}
	res := system.Run(0)
	if !res.Finished {
		return ParsecMetrics{}, fmt.Errorf("workloads: %s on %s with %d cores did not finish",
			app.Name, os.Name, cores)
	}
	return ParsecMetrics{
		App:        app.Name,
		OS:         os.Name,
		Cores:      cores,
		SimSeconds: res.SimTicks.Seconds(),
		Insts:      res.Insts,
		IPC:        system.Stats().Values()["ipc"],
	}, nil
}

// ParsecCoreCounts is Table II's CPU-count axis.
var ParsecCoreCounts = []int{1, 2, 8}

// BootBudget is the default simulated-time budget for boot tests.
const BootBudget sim.Tick = 10 * sim.TicksPerSecond / 1000
