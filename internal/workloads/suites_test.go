package workloads

import (
	"testing"

	"gem5art/internal/sim/cpu"
	"gem5art/internal/sim/isa"
	"gem5art/internal/sim/mem"
)

func execProgram(t *testing.T, p *isa.Program) cpu.Result {
	t.Helper()
	m := mem.NewClassic(1, mem.ClassicConfig{})
	sys := cpu.NewSystem(cpu.Config{Model: cpu.Timing, Cores: 1}, m)
	sys.LoadProgram(0, p)
	res := sys.Run(0)
	if !res.Finished {
		t.Fatalf("%s did not finish", p.Name)
	}
	return res
}

func TestNPBKernelsAllRun(t *testing.T) {
	for _, k := range NPBKernels {
		p, err := NPBProgram(k, NPBClassS, 0)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if err := isa.Validate(p); err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		res := execProgram(t, p)
		if res.Insts == 0 {
			t.Fatalf("%s executed nothing", k)
		}
	}
	if _, err := NPBProgram("zz", NPBClassS, 0); err == nil {
		t.Fatal("unknown NPB kernel accepted")
	}
}

func TestNPBClassesScaleWork(t *testing.T) {
	s, err := NPBProgram("cg", NPBClassS, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NPBProgram("cg", NPBClassA, 0)
	if err != nil {
		t.Fatal(err)
	}
	is := execProgram(t, s).Insts
	ia := execProgram(t, a).Insts
	if ia < 3*is {
		t.Fatalf("class A (%d insts) should be ~4x class S (%d)", ia, is)
	}
}

func TestGAPBSKernelsAllRun(t *testing.T) {
	for _, k := range GAPBSKernels {
		p, err := GAPBSProgram(k, 1, 0)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		res := execProgram(t, p)
		if res.Insts == 0 {
			t.Fatalf("%s executed nothing", k)
		}
	}
	if _, err := GAPBSProgram("dijkstra", 1, 0); err == nil {
		t.Fatal("unknown GAPBS kernel accepted")
	}
}

func TestGAPBSIsMemoryBound(t *testing.T) {
	// Graph kernels should have much lower IPC than NPB's ep (compute).
	g, err := GAPBSProgram("bfs", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NPBProgram("ep", NPBClassS, 0)
	if err != nil {
		t.Fatal(err)
	}
	gRes, eRes := execProgram(t, g), execProgram(t, e)
	gIPC := float64(gRes.Insts) / float64(gRes.SimTicks)
	eIPC := float64(eRes.Insts) / float64(eRes.SimTicks)
	if gIPC >= eIPC {
		t.Fatalf("bfs ipc-proxy %.3g not below ep %.3g", gIPC, eIPC)
	}
}

func TestSPECBenchmarksAllRun(t *testing.T) {
	for _, b := range SPECBenchmarks {
		p, err := SPECProgram(b, 0)
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		res := execProgram(t, p)
		if res.Insts == 0 {
			t.Fatalf("%s executed nothing", b)
		}
	}
	if _, err := SPECProgram("doom", 0); err == nil {
		t.Fatal("unknown SPEC benchmark accepted")
	}
}

func TestBootExitProgramTerminates(t *testing.T) {
	res := execProgram(t, BootExitProgram())
	if res.Insts == 0 || res.ROITicks == 0 {
		t.Fatalf("boot-exit: %+v", res)
	}
}

func TestSuiteProgramsAreDeterministic(t *testing.T) {
	a, err := NPBProgram("mg", NPBClassS, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NPBProgram("mg", NPBClassS, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(isa.Encode(a)) != string(isa.Encode(b)) {
		t.Fatal("NPB program not deterministic")
	}
	c, err := NPBProgram("mg", NPBClassS, 1) // different core
	if err != nil {
		t.Fatal(err)
	}
	if string(isa.Encode(a)) == string(isa.Encode(c)) {
		t.Fatal("different cores should get different streams")
	}
}
