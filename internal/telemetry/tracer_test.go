package telemetry

import (
	"testing"
)

func TestRingRecorderSpans(t *testing.T) {
	rec := NewRingRecorder(16)
	sp := rec.StartSpan("run.attempt", String("run", "r1"), Int("attempt", 1))
	sp.Event("checkpoint", Float("sim_seconds", 0.5))
	sp.End()
	rec.Event("broker.revoke", String("reason", "lease expired"))

	recs := rec.Records()
	if len(recs) != 4 {
		t.Fatalf("records = %d, want 4", len(recs))
	}
	if recs[0].Kind != KindSpanStart || recs[0].Name != "run.attempt" {
		t.Errorf("rec0 = %v %q", recs[0].Kind, recs[0].Name)
	}
	if recs[1].Kind != KindEvent || recs[1].Span != recs[0].Span {
		t.Errorf("span event not linked: %v vs %v", recs[1].Span, recs[0].Span)
	}
	if recs[2].Kind != KindSpanEnd || recs[2].Dur <= 0 {
		t.Errorf("span end = %v dur=%v", recs[2].Kind, recs[2].Dur)
	}
	if recs[3].Span != 0 {
		t.Errorf("free event should have span 0, got %d", recs[3].Span)
	}
	if len(recs[0].Attrs) != 2 || recs[0].Attrs[0].Key != "run" {
		t.Errorf("attrs not recorded: %v", recs[0].Attrs)
	}
}

func TestRingRecorderWrapAround(t *testing.T) {
	rec := NewRingRecorder(4)
	for i := 0; i < 10; i++ {
		rec.Event("tick", Int("i", int64(i)))
	}
	recs := rec.Records()
	if len(recs) != 4 {
		t.Fatalf("retained = %d, want 4", len(recs))
	}
	// Oldest-first ordering: the last 4 of 10 events.
	for i, r := range recs {
		want := int64(6 + i)
		if got := r.Attrs[0].Value.(int64); got != want {
			t.Errorf("record %d has i=%d, want %d", i, got, want)
		}
	}
	if rec.Total() != 10 {
		t.Errorf("Total = %d, want 10", rec.Total())
	}
	if rec.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", rec.Dropped())
	}
}

func TestSpanDoubleEnd(t *testing.T) {
	rec := NewRingRecorder(8)
	sp := rec.StartSpan("x")
	sp.End()
	sp.End() // must not record a second end
	ends := 0
	for _, r := range rec.Records() {
		if r.Kind == KindSpanEnd {
			ends++
		}
	}
	if ends != 1 {
		t.Errorf("span-end records = %d, want 1", ends)
	}
}

func TestNopTracer(t *testing.T) {
	tr := Nop()
	sp := tr.StartSpan("anything", String("k", "v"))
	sp.Event("e")
	sp.End()
	tr.Event("free")
	// Nothing to assert beyond "does not panic and allocates nothing
	// observable"; the nop tracer is the hot-path default.
}

func TestKindString(t *testing.T) {
	if KindSpanStart.String() != "span-start" || KindEvent.String() != "event" {
		t.Error("RecordKind.String mismatch")
	}
}
