// Package telemetry is the observability substrate of gem5art-go: a
// concurrency-safe metrics registry rendered in Prometheus text
// exposition format, a lightweight trace-hook interface with a
// ring-buffer recorder, and an event bus that streams run-lifecycle
// transitions to the status daemon.
//
// The package deliberately has no dependencies on the rest of the
// repository, so every layer (sim, tasks, run, database, CLI) can
// instrument itself without import cycles. Metric names follow the
// Prometheus conventions: a `gem5art_` prefix, `_total` suffix on
// counters, and base units (seconds) in histogram names.
package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value, safe for concurrent use.
// The zero value is usable but normally counters are created through a
// Registry so they appear on /metrics.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v. Negative deltas are ignored: a
// counter only moves forward.
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down, safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Add adjusts the gauge by v (which may be negative).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloat atomically adds v to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// DefBuckets are general-purpose latency buckets in seconds, matching
// the Prometheus client defaults.
var DefBuckets = []float64{
	.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// FastBuckets suit sub-millisecond operations such as embedded-database
// calls: 10µs up to 100ms.
var FastBuckets = []float64{
	.00001, .000025, .00005, .0001, .00025, .0005,
	.001, .0025, .005, .01, .025, .05, .1,
}

// Histogram buckets observations into cumulative Prometheus-style
// buckets with upper bounds. Safe for concurrent use.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, excluding +Inf
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; the last slot is +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns the upper bounds and cumulative counts, excluding the
// implicit +Inf bucket (whose cumulative count equals Count()).
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]uint64, len(h.bounds))
	var acc uint64
	for i := range h.bounds {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return bounds, cumulative
}

// vec is the shared child-management core of the labeled metric types.
type vec[T any] struct {
	mu     sync.RWMutex
	names  []string
	kids   map[string]*child[T]
	create func() *T
}

type child[T any] struct {
	values []string
	metric *T
}

func newVec[T any](names []string, create func() *T) *vec[T] {
	return &vec[T]{names: names, kids: make(map[string]*child[T]), create: create}
}

// with returns the child for the given label values, creating it on
// first use. The number of values must match the declared label names.
func (v *vec[T]) with(values ...string) *T {
	if len(values) != len(v.names) {
		panic("telemetry: label value count does not match declared labels")
	}
	key := strings.Join(values, "\xff")
	v.mu.RLock()
	c, ok := v.kids[key]
	v.mu.RUnlock()
	if ok {
		return c.metric
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.kids[key]; ok {
		return c.metric
	}
	c = &child[T]{values: append([]string(nil), values...), metric: v.create()}
	v.kids[key] = c
	return c.metric
}

// children returns the children sorted by label values for stable
// exposition output.
func (v *vec[T]) children() []*child[T] {
	v.mu.RLock()
	out := make([]*child[T], 0, len(v.kids))
	for _, c := range v.kids {
		out = append(out, c)
	}
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].values, "\xff") < strings.Join(out[j].values, "\xff")
	})
	return out
}

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct{ *vec[Counter] }

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter { return v.with(values...) }

// GaugeVec is a family of gauges partitioned by label values.
type GaugeVec struct{ *vec[Gauge] }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.with(values...) }

// HistogramVec is a family of histograms partitioned by label values.
type HistogramVec struct {
	*vec[Histogram]
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.with(values...) }
