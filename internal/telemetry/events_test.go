package telemetry

import (
	"testing"
	"time"
)

func TestEventBusPublishSubscribe(t *testing.T) {
	b := NewEventBus(8)
	ch, cancel := b.Subscribe(4)
	defer cancel()
	b.Publish("run", map[string]string{"id": "r1", "status": "running"})
	select {
	case ev := <-ch:
		if ev.Type != "run" || ev.Fields["id"] != "r1" || ev.Seq != 1 {
			t.Errorf("event = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no event delivered")
	}
}

func TestEventBusRecentReplay(t *testing.T) {
	b := NewEventBus(4)
	for i := 0; i < 6; i++ {
		b.Publish("tick", nil)
	}
	recent := b.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("recent = %d events, want 4 (ring capacity)", len(recent))
	}
	// Oldest first, and sequence numbers keep counting past the ring.
	if recent[0].Seq != 3 || recent[3].Seq != 6 {
		t.Errorf("recent seqs = %d..%d, want 3..6", recent[0].Seq, recent[3].Seq)
	}
	if got := b.Recent(2); len(got) != 2 || got[1].Seq != 6 {
		t.Errorf("Recent(2) = %+v", got)
	}
}

func TestEventBusSlowSubscriberDrops(t *testing.T) {
	b := NewEventBus(8)
	ch, cancel := b.Subscribe(1)
	defer cancel()
	// Publisher must never block even though nobody is reading.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			b.Publish("flood", nil)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Publish blocked on a slow subscriber")
	}
	if ev := <-ch; ev.Seq != 1 {
		t.Errorf("first buffered event seq = %d, want 1", ev.Seq)
	}
}

func TestEventBusCancelCloses(t *testing.T) {
	b := NewEventBus(8)
	ch, cancel := b.Subscribe(1)
	cancel()
	cancel() // idempotent
	if _, ok := <-ch; ok {
		t.Error("channel not closed after cancel")
	}
	b.Publish("after", nil) // must not panic on closed subscriber
}
