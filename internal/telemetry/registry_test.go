package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return sb.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "operations")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	g := r.Gauge("test_depth", "queue depth")
	g.Set(4)
	g.Dec()

	out := render(t, r)
	for _, want := range []string{
		"# HELP test_ops_total operations\n",
		"# TYPE test_ops_total counter\n",
		"test_ops_total 3\n",
		"# TYPE test_depth gauge\n",
		"test_depth 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestLabeledSeries(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_jobs_total", "jobs by result", "result")
	v.With("ok").Add(2)
	v.With("error").Inc()
	v.With("ok").Inc() // same child

	out := render(t, r)
	if !strings.Contains(out, `test_jobs_total{result="ok"} 3`) {
		t.Errorf("missing ok series:\n%s", out)
	}
	if !strings.Contains(out, `test_jobs_total{result="error"} 1`) {
		t.Errorf("missing error series:\n%s", out)
	}
	// One TYPE line for the family, not per child.
	if n := strings.Count(out, "# TYPE test_jobs_total"); n != 1 {
		t.Errorf("TYPE line count = %d, want 1", n)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("test_paths", "values with awkward characters", "path")
	v.With(`C:\dir"x"` + "\nend").Set(1)
	out := render(t, r)
	want := `test_paths{path="C:\\dir\"x\"\nend"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("escaped series %q missing in:\n%s", want, out)
	}
	// A literal newline inside the braces would corrupt the format.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "{") && !strings.Contains(line, "}") {
			t.Errorf("unterminated label set on line %q", line)
		}
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x_total", "line1\nline2 with \\ backslash")
	out := render(t, r)
	if !strings.Contains(out, `# HELP test_x_total line1\nline2 with \\ backslash`) {
		t.Errorf("help not escaped:\n%s", out)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "op latency", []float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.1, 0.3, 0.7, 2.5} {
		h.Observe(v)
	}
	// Cumulative: le=0.1 -> 2 (0.05 and the boundary value 0.1),
	// le=0.5 -> 3, le=1 -> 4, +Inf -> 5.
	bounds, cum := h.Buckets()
	wantCum := []uint64{2, 3, 4}
	for i := range bounds {
		if cum[i] != wantCum[i] {
			t.Errorf("bucket le=%g cumulative = %d, want %d", bounds[i], cum[i], wantCum[i])
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.3+0.7+2.5; got != want {
		t.Errorf("Sum = %g, want %g", got, want)
	}

	out := render(t, r)
	for _, want := range []string{
		`test_latency_seconds_bucket{le="0.1"} 2`,
		`test_latency_seconds_bucket{le="0.5"} 3`,
		`test_latency_seconds_bucket{le="1"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		`test_latency_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("test_db_seconds", "db latency", []float64{0.01}, "op")
	v.With("insert").Observe(0.005)
	v.With("find").Observe(0.5)
	out := render(t, r)
	for _, want := range []string{
		`test_db_seconds_bucket{op="insert",le="0.01"} 1`,
		`test_db_seconds_bucket{op="find",le="0.01"} 0`,
		`test_db_seconds_bucket{op="find",le="+Inf"} 1`,
		`test_db_seconds_count{op="insert"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_twice_total", "first")
	b := r.Counter("test_twice_total", "second help ignored")
	if a != b {
		t.Fatal("re-registering the same counter returned a different instance")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("shared counter value = %g, want 1", b.Value())
	}

	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different type did not panic")
		}
	}()
	r.Gauge("test_twice_total", "now a gauge")
}

func TestGaugeFuncAndCollector(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("test_uptime_seconds", "uptime", func() float64 { return 42 })
	r.Collector("test_sim_stat", "bridged stats", func(emit func([]Label, float64)) {
		emit([]Label{{Name: "stat", Value: "sim_insts"}}, 123)
		emit([]Label{{Name: "stat", Value: "ipc"}}, 1.5)
	})
	out := render(t, r)
	for _, want := range []string{
		"test_uptime_seconds 42",
		`test_sim_stat{stat="sim_insts"} 123`,
		`test_sim_stat{stat="ipc"} 1.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_a_total", "a").Add(7)
	r.CounterVec("test_b_total", "b", "k").With("v").Inc()
	r.Histogram("test_h_seconds", "h", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if snap["test_a_total"] != 7 {
		t.Errorf("snapshot a = %g", snap["test_a_total"])
	}
	if snap[`test_b_total{k="v"}`] != 1 {
		t.Errorf("snapshot b = %g", snap[`test_b_total{k="v"}`])
	}
	if snap["test_h_seconds_count"] != 1 || snap["test_h_seconds_sum"] != 0.5 {
		t.Errorf("snapshot histogram = %g/%g", snap["test_h_seconds_count"], snap["test_h_seconds_sum"])
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"system.cpu.committedInsts": "system_cpu_committedInsts",
		"sim_insts":                 "sim_insts",
		"9lives":                    "_lives",
		"a-b::c":                    "a_b::c",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "concurrent adds")
	h := r.Histogram("test_conc_seconds", "concurrent observes", []float64{0.5})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %g, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}
