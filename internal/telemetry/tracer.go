package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// The trace-hook layer mirrors the shape of Akita-style hook tracing in
// discrete-event simulators: instrumented code opens spans around units
// of work (a run attempt, a database flush, a boot simulation) and
// emits typed point events inside them. Production code talks to the
// Tracer interface; tests and the status daemon attach a RingRecorder
// to observe what happened without changing the instrumented code.

// Attr is one typed key/value attribute on a span or event.
type Attr struct {
	Key   string
	Value any
}

// String constructs a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int constructs an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float constructs a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool constructs a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Tracer receives span and event hooks from instrumented code.
// Implementations must be safe for concurrent use.
type Tracer interface {
	// StartSpan opens a span; the returned Span must be ended exactly
	// once.
	StartSpan(name string, attrs ...Attr) Span
	// Event records a point event outside any span.
	Event(name string, attrs ...Attr)
}

// Span is one in-flight traced operation.
type Span interface {
	// Event records a point event inside the span.
	Event(name string, attrs ...Attr)
	// End closes the span, recording its duration.
	End()
}

// Nop returns a Tracer that records nothing. It is the default wherever
// a Tracer parameter is optional, so instrumented paths need no nil
// checks.
func Nop() Tracer { return nopTracer{} }

type nopTracer struct{}
type nopSpan struct{}

func (nopTracer) StartSpan(string, ...Attr) Span { return nopSpan{} }
func (nopTracer) Event(string, ...Attr)          {}
func (nopSpan) Event(string, ...Attr)            {}
func (nopSpan) End()                             {}

// RecordKind classifies one trace record.
type RecordKind uint8

// Record kinds.
const (
	KindSpanStart RecordKind = iota
	KindSpanEnd
	KindEvent
)

func (k RecordKind) String() string {
	switch k {
	case KindSpanStart:
		return "span-start"
	case KindSpanEnd:
		return "span-end"
	case KindEvent:
		return "event"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Record is one captured trace entry.
type Record struct {
	Kind  RecordKind
	Span  uint64 // span id; 0 for free-standing events
	Name  string
	Time  time.Time
	Dur   time.Duration // set on KindSpanEnd
	Attrs []Attr
}

// RingRecorder is a Tracer that keeps the most recent records in a
// fixed-capacity ring buffer — cheap enough to stay attached during
// long sweeps, with bounded memory.
type RingRecorder struct {
	mu      sync.Mutex
	buf     []Record
	next    int
	total   uint64
	spanSeq atomic.Uint64
}

// NewRingRecorder returns a recorder retaining the last capacity
// records (minimum 1).
func NewRingRecorder(capacity int) *RingRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &RingRecorder{buf: make([]Record, 0, capacity)}
}

func (r *RingRecorder) record(rec Record) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.next] = rec
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
	r.mu.Unlock()
}

// StartSpan implements Tracer.
func (r *RingRecorder) StartSpan(name string, attrs ...Attr) Span {
	id := r.spanSeq.Add(1)
	start := time.Now()
	r.record(Record{Kind: KindSpanStart, Span: id, Name: name, Time: start, Attrs: attrs})
	return &ringSpan{rec: r, id: id, name: name, start: start}
}

// Event implements Tracer.
func (r *RingRecorder) Event(name string, attrs ...Attr) {
	r.record(Record{Kind: KindEvent, Name: name, Time: time.Now(), Attrs: attrs})
}

// Records returns the retained records, oldest first.
func (r *RingRecorder) Records() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total reports how many records were ever written (including ones the
// ring has since overwritten).
func (r *RingRecorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped reports how many records were overwritten by newer ones.
func (r *RingRecorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - uint64(len(r.buf))
}

type ringSpan struct {
	rec   *RingRecorder
	id    uint64
	name  string
	start time.Time
	ended atomic.Bool
}

// Event implements Span.
func (s *ringSpan) Event(name string, attrs ...Attr) {
	s.rec.record(Record{Kind: KindEvent, Span: s.id, Name: name, Time: time.Now(), Attrs: attrs})
}

// End implements Span. Ending twice records only once.
func (s *ringSpan) End() {
	if s.ended.Swap(true) {
		return
	}
	now := time.Now()
	s.rec.record(Record{Kind: KindSpanEnd, Span: s.id, Name: s.name, Time: now, Dur: now.Sub(s.start)})
}
