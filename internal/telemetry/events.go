package telemetry

import (
	"sync"
	"time"
)

// Event is one lifecycle transition published to the bus — a run
// changing status, a broker revoking a lease. Events power the status
// daemon's SSE stream (/api/events) and are kept in a bounded ring for
// replay to late subscribers.
type Event struct {
	Seq    uint64            `json:"seq"`
	Time   time.Time         `json:"time"`
	Type   string            `json:"type"`
	Fields map[string]string `json:"fields,omitempty"`
}

// EventBus fans published events out to subscribers without ever
// blocking the publisher: a slow subscriber drops events rather than
// stalling the experiment.
type EventBus struct {
	mu   sync.Mutex
	seq  uint64
	ring []Event
	next int
	subs map[chan Event]struct{}
}

// NewEventBus returns a bus retaining the last capacity events for
// replay (minimum 1).
func NewEventBus(capacity int) *EventBus {
	if capacity < 1 {
		capacity = 1
	}
	return &EventBus{
		ring: make([]Event, 0, capacity),
		subs: make(map[chan Event]struct{}),
	}
}

// Bus is the process-wide event bus the run layer publishes to and the
// status daemon streams from.
var Bus = NewEventBus(1024)

// Publish records an event and delivers it to every subscriber whose
// channel has room. It never blocks.
func (b *EventBus) Publish(typ string, fields map[string]string) {
	b.mu.Lock()
	b.seq++
	ev := Event{Seq: b.seq, Time: time.Now(), Type: typ, Fields: fields}
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, ev)
	} else {
		b.ring[b.next] = ev
		b.next = (b.next + 1) % cap(b.ring)
	}
	for ch := range b.subs {
		select {
		case ch <- ev:
		default: // subscriber is behind; drop rather than block
		}
	}
	b.mu.Unlock()
}

// Subscribe registers a new subscriber with the given channel buffer
// (minimum 1) and returns the channel plus a cancel function. After
// cancel returns no further events are delivered and the channel is
// closed.
func (b *EventBus) Subscribe(buffer int) (<-chan Event, func()) {
	if buffer < 1 {
		buffer = 1
	}
	ch := make(chan Event, buffer)
	b.mu.Lock()
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	cancel := func() {
		b.mu.Lock()
		if _, ok := b.subs[ch]; ok {
			delete(b.subs, ch)
			close(ch)
		}
		b.mu.Unlock()
	}
	return ch, cancel
}

// Recent returns up to n retained events, oldest first (n <= 0 returns
// everything retained).
func (b *EventBus) Recent(n int) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, 0, len(b.ring))
	out = append(out, b.ring[b.next:]...)
	out = append(out, b.ring[:b.next]...)
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}
