package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// Label is one name=value pair attached to a sample.
type Label struct {
	Name, Value string
}

// CollectFunc emits read-through samples at scrape time. It is how
// external state (e.g. the simulator's gem5-style StatGroup) appears on
// /metrics without maintaining duplicate counters.
type CollectFunc func(emit func(labels []Label, value float64))

// family is one named metric family in a registry.
type family struct {
	name, help, typ string
	labels          []string

	counter   *CounterVec
	gauge     *GaugeVec
	histogram *HistogramVec
	gaugeFn   func() float64
	collect   []CollectFunc
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. All methods are safe for concurrent use.
// Registration is idempotent: asking for an existing name returns the
// existing family, so package-level metrics can be declared wherever
// they are used; a name re-registered with a different type or label
// set panics, as that is a programming error.
type Registry struct {
	mu       sync.RWMutex
	order    []*family
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry that the instrumented packages
// (sim, tasks, run, database) register into and that /metrics serves.
var Default = NewRegistry()

func (r *Registry) family(name, help, typ string, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s(%v), was %s(%v)",
				name, typ, labels, f.typ, f.labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("telemetry: %s re-registered with labels %v, was %v",
					name, labels, f.labels))
			}
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: append([]string(nil), labels...)}
	r.families[name] = f
	r.order = append(r.order, f)
	return f
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := r.family(name, help, "counter", labels)
	if f.counter == nil {
		f.counter = &CounterVec{newVec(labels, func() *Counter { return &Counter{} })}
	}
	return f.counter
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	f := r.family(name, help, "gauge", labels)
	if f.gauge == nil {
		f.gauge = &GaugeVec{newVec(labels, func() *Gauge { return &Gauge{} })}
	}
	return f.gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, "gauge", nil)
	f.gaugeFn = fn
}

// Histogram registers (or returns) an unlabeled histogram with the
// given bucket upper bounds (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, buckets).With()
}

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.family(name, help, "histogram", labels)
	if f.histogram == nil {
		bs := append([]float64(nil), buckets...)
		f.histogram = &HistogramVec{newVec(labels, func() *Histogram { return newHistogram(bs) })}
	}
	return f.histogram
}

// Collector attaches a read-through sample source to a gauge family:
// fn is invoked at every scrape and its emitted samples rendered under
// the family name. Multiple collectors may share one family.
func (r *Registry) Collector(name, help string, fn CollectFunc) {
	f := r.family(name, help, "gauge", nil)
	r.mu.Lock()
	f.collect = append(f.collect, fn)
	r.mu.Unlock()
}

// WriteText renders every family in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	fams := append([]*family(nil), r.order...)
	r.mu.RUnlock()
	var sb strings.Builder
	for _, f := range fams {
		f.write(&sb)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Handler returns an http.Handler serving the registry as /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// Snapshot flattens every sample to a name->value map. Labeled series
// use the exposition key, e.g. `name{k="v"}`; histograms contribute
// `name_sum` and `name_count` entries. Intended for tests and report
// generation, not for scraping.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	r.mu.RLock()
	fams := append([]*family(nil), r.order...)
	r.mu.RUnlock()
	for _, f := range fams {
		switch {
		case f.counter != nil:
			for _, c := range f.counter.children() {
				out[seriesKey(f.name, f.labels, c.values)] = c.metric.Value()
			}
		case f.gauge != nil:
			for _, c := range f.gauge.children() {
				out[seriesKey(f.name, f.labels, c.values)] = c.metric.Value()
			}
		case f.histogram != nil:
			for _, c := range f.histogram.children() {
				base := seriesKey(f.name, f.labels, c.values)
				out[base+"_sum"] = c.metric.Sum()
				out[base+"_count"] = float64(c.metric.Count())
			}
		case f.gaugeFn != nil:
			out[f.name] = f.gaugeFn()
		}
	}
	return out
}

func seriesKey(name string, names, values []string) string {
	if len(names) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	writeLabels(&sb, names, values, "", 0)
	return sb.String()
}

// write renders one family, including HELP and TYPE comment lines.
func (f *family) write(sb *strings.Builder) {
	sb.WriteString("# HELP ")
	sb.WriteString(f.name)
	sb.WriteByte(' ')
	sb.WriteString(escapeHelp(f.help))
	sb.WriteByte('\n')
	sb.WriteString("# TYPE ")
	sb.WriteString(f.name)
	sb.WriteByte(' ')
	sb.WriteString(f.typ)
	sb.WriteByte('\n')
	switch {
	case f.counter != nil:
		for _, c := range f.counter.children() {
			writeSample(sb, f.name, f.labels, c.values, "", 0, c.metric.Value())
		}
	case f.gauge != nil || f.gaugeFn != nil || f.collect != nil:
		if f.gauge != nil {
			for _, c := range f.gauge.children() {
				writeSample(sb, f.name, f.labels, c.values, "", 0, c.metric.Value())
			}
		}
		if f.gaugeFn != nil {
			writeSample(sb, f.name, nil, nil, "", 0, f.gaugeFn())
		}
		for _, collect := range f.collect {
			collect(func(labels []Label, v float64) {
				names := make([]string, len(labels))
				values := make([]string, len(labels))
				for i, l := range labels {
					names[i], values[i] = l.Name, l.Value
				}
				writeSample(sb, f.name, names, values, "", 0, v)
			})
		}
	case f.histogram != nil:
		for _, c := range f.histogram.children() {
			h := c.metric
			bounds, cum := h.Buckets()
			for i, b := range bounds {
				sb.WriteString(f.name)
				sb.WriteString("_bucket")
				writeLabels(sb, f.labels, c.values, "le", b)
				sb.WriteByte(' ')
				sb.WriteString(strconv.FormatUint(cum[i], 10))
				sb.WriteByte('\n')
			}
			sb.WriteString(f.name)
			sb.WriteString("_bucket")
			writeLabels(sb, f.labels, c.values, "le", infBound)
			sb.WriteByte(' ')
			sb.WriteString(strconv.FormatUint(h.Count(), 10))
			sb.WriteByte('\n')
			writeSample(sb, f.name+"_sum", f.labels, c.values, "", 0, h.Sum())
			sb.WriteString(f.name)
			sb.WriteString("_count")
			writeLabels(sb, f.labels, c.values, "", 0)
			sb.WriteByte(' ')
			sb.WriteString(strconv.FormatUint(h.Count(), 10))
			sb.WriteByte('\n')
		}
	}
}

// infBound marks the +Inf histogram bucket for writeLabels.
var infBound = math.Inf(1)

func writeSample(sb *strings.Builder, name string, labelNames, labelValues []string, extraName string, extraBound float64, v float64) {
	sb.WriteString(name)
	writeLabels(sb, labelNames, labelValues, extraName, extraBound)
	sb.WriteByte(' ')
	sb.WriteString(formatValue(v))
	sb.WriteByte('\n')
}

// writeLabels renders `{a="x",le="0.5"}`; extraName is the histogram
// `le` label (extraBound of infBound renders "+Inf"). Nothing is
// written when there are no labels at all.
func writeLabels(sb *strings.Builder, names, values []string, extraName string, extraBound float64) {
	if len(names) == 0 && extraName == "" {
		return
	}
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraName)
		sb.WriteString(`="`)
		if math.IsInf(extraBound, 1) {
			sb.WriteString("+Inf")
		} else {
			sb.WriteString(formatValue(extraBound))
		}
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp escapes a HELP string: backslash and newline only.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// SanitizeName maps an arbitrary stat name (e.g. gem5's dotted
// "system.cpu.committedInsts") to a valid Prometheus metric or label
// value fragment: [a-zA-Z0-9_:], everything else becomes '_'.
func SanitizeName(s string) string {
	var sb strings.Builder
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// Families lists registered family names in registration order, for
// diagnostics and docs generation.
func (r *Registry) Families() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	for i, f := range r.order {
		out[i] = f.name
	}
	return out
}
