package experiments

import (
	"strings"
	"testing"

	"gem5art/internal/core/artifact"
	"gem5art/internal/database"
)

// TestReproducibilityAcrossSessions is the paper's core promise: run an
// experiment, close everything, reopen the database later, and recover
// the complete record — run outcomes, the artifacts that produced them,
// and the archived result files.
func TestReproducibilityAcrossSessions(t *testing.T) {
	dir := t.TempDir()

	// Session 1: provision and run a small GPU study, then flush.
	env, err := NewEnv(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.RunGPUStudy(2, []string{"FAMutex"}); err != nil {
		t.Fatal(err)
	}
	nArtifacts := len(env.Reg.All())
	if err := env.DB().Close(); err != nil {
		t.Fatal(err)
	}

	// Session 2: reopen the raw database (no re-provisioning) and audit.
	db := database.MustOpen(dir)
	reg := artifact.NewRegistry(db)
	if got := len(reg.All()); got != nArtifacts {
		t.Fatalf("reloaded %d artifacts, want %d", got, nArtifacts)
	}
	runs := db.Collection("runs").Find(database.Doc{"status": "done"})
	if len(runs) != 2 {
		t.Fatalf("reloaded %d done runs, want 2", len(runs))
	}
	for _, d := range runs {
		// Every referenced artifact resolves...
		for field, id := range d["artifacts"].(map[string]any) {
			a, err := reg.Get(id.(string))
			if err != nil {
				t.Fatalf("run references missing %s artifact: %v", field, err)
			}
			if a.Hash == "" {
				t.Fatalf("artifact %s has no hash", a.Name)
			}
		}
		// ...and the archived stats file is recoverable.
		statsHash, _ := d["stats_file"].(string)
		raw, err := db.Files().Get(statsHash)
		if err != nil {
			t.Fatalf("stats file missing: %v", err)
		}
		if !strings.Contains(string(raw), "shader_ticks") {
			t.Fatalf("stats content: %q", raw)
		}
	}

	// Session 3: re-provisioning the same environment is idempotent —
	// no duplicate artifacts appear.
	env2, err := NewEnv(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(env2.Reg.All()); got != nArtifacts {
		t.Fatalf("re-provisioning grew the registry: %d -> %d", nArtifacts, got)
	}
	// And re-running the same cell appends new run documents (runs are
	// data points, not deduplicated).
	if _, err := env2.RunGPUStudy(2, []string{"FAMutex"}); err != nil {
		t.Fatal(err)
	}
	if got := env2.DB().Collection("runs").Count(database.Doc{"status": "done"}); got != 4 {
		t.Fatalf("%d done runs after re-run, want 4", got)
	}
}

// TestRunProvenanceClosure verifies that from a single run document one
// can recover the full input closure — the "reproducibility report" the
// paper describes.
func TestRunProvenanceClosure(t *testing.T) {
	env, err := NewEnv("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.RunParsecStudy(2, []string{"dedup"}, []int{1}); err != nil {
		t.Fatal(err)
	}
	d := env.DB().Collection("runs").FindOne(database.Doc{"status": "done"})
	if d == nil {
		t.Fatal("no run recorded")
	}
	arts := d["artifacts"].(map[string]any)
	gem5Art, err := env.Reg.Get(arts["gem5"].(string))
	if err != nil {
		t.Fatal(err)
	}
	closure, err := env.Reg.Closure(gem5Art)
	if err != nil {
		t.Fatal(err)
	}
	// gem5 binary -> gem5 repo.
	if len(closure) != 2 || closure[1].Typ != "git repository" {
		t.Fatalf("closure: %d artifacts", len(closure))
	}
	if closure[1].Git.URL == "" || closure[1].Git.Hash == "" {
		t.Fatal("repository artifact lost its git identity")
	}
	cmd, _ := d["command"].(string)
	if !strings.Contains(cmd, "gem5.opt") || !strings.Contains(cmd, "--benchmark=dedup") {
		t.Fatalf("command: %q", cmd)
	}
}
