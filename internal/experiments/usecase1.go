package experiments

import (
	"fmt"
	"strings"

	"gem5art/internal/analysis"
	"gem5art/internal/core/run"
	"gem5art/internal/database"
	"gem5art/internal/workloads"
)

// ParsecStudy holds use case 1's results: the 60-run PARSEC sweep across
// two Ubuntu LTS images and {1,2,8} cores (Table II, Figures 6 and 7).
type ParsecStudy struct {
	Apps  []string
	Cores []int
	// Seconds[os][app][cores] is simulated seconds for that run.
	Seconds map[string]map[string]map[int]float64
}

// RunParsecStudy executes the use-case-1 sweep through the gem5art stack
// with the given parallelism. Apps/cores may be narrowed for quick runs;
// nil means the paper's full set (10 apps x 2 OS x {1,2,8} = 60 runs).
func (e *Env) RunParsecStudy(workers int, apps []string, cores []int) (*ParsecStudy, error) {
	if len(apps) == 0 {
		apps = workloads.ParsecAppNames()
	}
	if len(cores) == 0 {
		cores = workloads.ParsecCoreCounts
	}
	var specs []run.FSSpec
	for _, os := range workloads.OSImages {
		for _, app := range apps {
			for _, n := range cores {
				name := fmt.Sprintf("parsec-%s-%s-%dc", os.Name, app, n)
				specs = append(specs, e.fsSpec(name, "configs/run_parsec.py", os.Kernel,
					e.ParsecDisk[os.Name], []string{
						"benchmark=" + app,
						"cpu=TimingSimpleCPU",
						fmt.Sprintf("num_cpus=%d", n),
						"size=simmedium",
						"os=" + os.Name,
					}))
			}
		}
	}
	if err := e.launchAll("use-case-1-parsec", workers, specs); err != nil {
		return nil, err
	}

	study := &ParsecStudy{
		Apps:    apps,
		Cores:   cores,
		Seconds: map[string]map[string]map[int]float64{},
	}
	for _, os := range workloads.OSImages {
		study.Seconds[os.Name] = map[string]map[int]float64{}
		for _, app := range apps {
			study.Seconds[os.Name][app] = map[int]float64{}
		}
	}
	rows := analysis.ExtractRuns(e.DB(), database.Doc{
		"run_script": "configs/run_parsec.py", "status": "done",
	})
	for _, r := range rows {
		if m, ok := study.Seconds[r.Params["os"]]; ok {
			if mm, ok := m[r.Params["benchmark"]]; ok {
				mm[atoiSafe(r.Params["num_cpus"])] = r.SimSeconds
			}
		}
	}
	return study, nil
}

func atoiSafe(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// Diff returns Figure 6's quantity for one app and core count: the
// absolute execution-time difference, Ubuntu 18.04 minus 20.04, in
// simulated seconds (positive = 18.04 slower).
func (s *ParsecStudy) Diff(app string, cores int) float64 {
	return s.Seconds[workloads.Ubuntu1804.Name][app][cores] -
		s.Seconds[workloads.Ubuntu2004.Name][app][cores]
}

// Speedup returns Figure 7's quantity: execution time at 1 core over
// execution time at maxCores for one OS.
func (s *ParsecStudy) Speedup(osName, app string, maxCores int) float64 {
	base := s.Seconds[osName][app][1]
	at := s.Seconds[osName][app][maxCores]
	if at == 0 {
		return 0
	}
	return base / at
}

// RenderTable2 prints the use-case-1 configuration (Table II).
func RenderTable2() string {
	var sb strings.Builder
	sb.WriteString("== Table II: Configuration Parameters for Use-Case 1 ==\n")
	rows := [][2]string{
		{"CPU", "TimingSimpleCPU"},
		{"Number of CPUs", "1, 2, 8"},
		{"Memory", "1 channel, DDR3_1600_8x8"},
		{"OS", "Ubuntu 20.04 (kernel 5.4.51), Ubuntu 18.04 (kernel 4.15.18)"},
		{"Workloads", strings.Join(workloads.ParsecAppNames(), ", ")},
		{"Input sizes", "simmedium"},
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %s\n", r[0], r[1])
	}
	return sb.String()
}

// RenderFig6 renders Figure 6: per-app absolute time difference between
// the OS images at each core count.
func (s *ParsecStudy) RenderFig6() string {
	var series []analysis.Series
	for _, n := range s.Cores {
		ser := analysis.Series{Name: fmt.Sprintf("%d-core", n)}
		for _, app := range s.Apps {
			ser.Labels = append(ser.Labels, app)
			ser.Values = append(ser.Values, s.Diff(app, n))
		}
		series = append(series, ser)
	}
	return analysis.BarChart(
		"Figure 6: PARSEC execution time difference, Ubuntu 18.04 - 20.04 (seconds)",
		series, 40)
}

// RenderFig7 renders Figure 7: 1->N-core speedup per app per OS.
func (s *ParsecStudy) RenderFig7() string {
	maxCores := s.Cores[len(s.Cores)-1]
	var series []analysis.Series
	for _, os := range workloads.OSImages {
		ser := analysis.Series{Name: os.Name}
		for _, app := range s.Apps {
			ser.Labels = append(ser.Labels, app)
			ser.Values = append(ser.Values, s.Speedup(os.Name, app, maxCores))
		}
		series = append(series, ser)
	}
	return analysis.BarChart(
		fmt.Sprintf("Figure 7: PARSEC speedup, 1 -> %d cores", maxCores), series, 40)
}
