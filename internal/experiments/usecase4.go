package experiments

import (
	"fmt"
	"strings"

	"gem5art/internal/analysis"
	"gem5art/internal/core/run"
	"gem5art/internal/database"
	"gem5art/internal/sim/cpu"
	"gem5art/internal/sim/kernel"
)

// Use case 4: the energy axis the paper's sweeps lack. With the energy
// model attached (FSSpec.Energy = "auto", so every cell gets the preset
// matching its own CPU model and memory system), boot each OS version ×
// CPU model cell and compare total joules, average watts, and EDP —
// which kernel costs more energy to boot, and how the answer changes
// with microarchitectural detail. Cells go through the regular launch
// path, so the simulation cache and shared-boot machinery apply; the
// energy model salts the cache key, so energy-enabled cells never
// replay plain ones.

// EnergyStudy holds use case 4's results.
type EnergyStudy struct {
	Kernels []kernel.Version
	CPUs    []cpu.Model
	Rows    []analysis.RunRow
}

// energyRunPrefix distinguishes use case 4's run names from the other
// boot-exit sweeps sharing the database.
const energyRunPrefix = "energy-"

// RunEnergySweep executes the energy sweep: kernels × CPU models at one
// core on the classic memory system with init boot — the cell shape
// every CPU model supports, so the comparison is apples-to-apples. Nil
// axes default to the five LTS kernels and all four CPU models.
func (e *Env) RunEnergySweep(workers int, kernels []kernel.Version, cpus []cpu.Model) (*EnergyStudy, error) {
	if kernels == nil {
		kernels = kernel.BootKernels
	}
	if cpus == nil {
		cpus = cpu.AllModels
	}
	var specs []run.FSSpec
	i := 0
	for _, k := range kernels {
		for _, c := range cpus {
			name := fmt.Sprintf("%s%04d-%s-%s", energyRunPrefix, i, k, c)
			spec := e.fsSpec(name, "configs/run_exit.py", string(k), e.BootDisk, []string{
				"kernel=" + string(k),
				"cpu=" + string(c),
				"mem_sys=classic",
				"num_cpus=1",
				"boot_type=" + string(kernel.BootInit),
			})
			spec.Energy = "auto"
			specs = append(specs, spec)
			i++
		}
	}
	if err := e.launchAll("use-case-4-energy", workers, specs); err != nil {
		return nil, err
	}

	study := &EnergyStudy{Kernels: kernels, CPUs: cpus}
	for _, r := range analysis.ExtractRuns(e.DB(), database.Doc{
		"run_script": "configs/run_exit.py", "status": "done",
	}) {
		if strings.HasPrefix(r.Name, energyRunPrefix) {
			study.Rows = append(study.Rows, r)
		}
	}
	return study, nil
}

// Joules returns the total boot energy of one cell (0 if absent).
func (s *EnergyStudy) Joules(k kernel.Version, c cpu.Model) float64 {
	for _, r := range s.Rows {
		if r.Params["kernel"] == string(k) && r.Params["cpu"] == string(c) {
			return r.Joules
		}
	}
	return 0
}

// JoulesChart renders boot energy grouped by kernel, one bar per CPU
// model.
func (s *EnergyStudy) JoulesChart() string {
	return analysis.BarChart("Use case 4: boot energy (J) by OS version x CPU model",
		analysis.GroupBy(s.Rows, "cpu", "kernel", analysis.MetricJoules), 40)
}

// EDPChart renders the energy-delay product the same way — the metric
// that penalizes slow-but-frugal and fast-but-hungry configurations
// alike.
func (s *EnergyStudy) EDPChart() string {
	return analysis.BarChart("Use case 4: boot EDP (J*s) by OS version x CPU model",
		analysis.GroupBy(s.Rows, "cpu", "kernel", analysis.MetricEDP), 40)
}

// CSV renders the study's energy columns for external tools.
func (s *EnergyStudy) CSV() string {
	var sb strings.Builder
	_ = analysis.EnergyCSV(&sb, s.Rows, "kernel", "cpu")
	return sb.String()
}

// Summary reports the cheapest and most expensive cells by energy.
func (s *EnergyStudy) Summary() string {
	if len(s.Rows) == 0 {
		return "energy sweep: no completed runs"
	}
	min, max := s.Rows[0], s.Rows[0]
	for _, r := range s.Rows[1:] {
		if r.Joules < min.Joules {
			min = r
		}
		if r.Joules > max.Joules {
			max = r
		}
	}
	return fmt.Sprintf(
		"energy sweep: %d cells; cheapest %s/%s %.3e J; most expensive %s/%s %.3e J (%.1fx)",
		len(s.Rows),
		min.Params["kernel"], min.Params["cpu"], min.Joules,
		max.Params["kernel"], max.Params["cpu"], max.Joules,
		safeRatio(max.Joules, min.Joules))
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
