package experiments

import (
	"fmt"
	"strings"

	"gem5art/internal/analysis"
	"gem5art/internal/core/run"
	"gem5art/internal/database"
	"gem5art/internal/resources"
	"gem5art/internal/sim/gpu"
	"gem5art/internal/workloads"
)

// GPUStudy holds use case 3's results: 29 Table IV workloads under both
// register allocators (58 runs, Figure 9).
type GPUStudy struct {
	Names []string
	// Ticks[allocator][app] is shader ticks.
	Ticks map[string]map[string]float64
}

// RunGPUStudy executes the register-allocator comparison through the
// gem5art stack. apps of nil means all 29 Table IV workloads.
func (e *Env) RunGPUStudy(workers int, apps []string) (*GPUStudy, error) {
	if len(apps) == 0 {
		apps = workloads.GPUWorkloadNames()
	}
	// Use case 3 needs the GPU environment resource registered too — the
	// docker image is part of the documented provenance.
	if _, err := resources.Build(e.Reg, "GCN-docker", resources.BuildOptions{}); err != nil {
		return nil, err
	}
	var specs []run.FSSpec
	for _, app := range apps {
		for _, alloc := range []gpu.Allocator{gpu.Simple, gpu.Dynamic} {
			name := fmt.Sprintf("gpu-%s-%s", app, alloc)
			spec := e.fsSpec(name, "configs/run_gpu.py", "5.4.49",
				e.BootDisk, []string{
					"app=" + app,
					"reg_alloc=" + string(alloc),
				})
			// Use case 3 pins gem5 v21.0 built with GCN3_X86.
			spec.Gem5Binary = e.Gem5GPU.Path
			spec.Gem5Artifact = e.Gem5GPU
			specs = append(specs, spec)
		}
	}
	if err := e.launchAll("use-case-3-gpu", workers, specs); err != nil {
		return nil, err
	}

	study := &GPUStudy{
		Names: apps,
		Ticks: map[string]map[string]float64{
			string(gpu.Simple):  {},
			string(gpu.Dynamic): {},
		},
	}
	for _, d := range e.DB().Collection(run.Collection).Find(database.Doc{
		"run_script": "configs/run_gpu.py", "status": "done",
	}) {
		name, _ := d["name"].(string)
		simSeconds, _ := d["sim_seconds"].(float64)
		for _, alloc := range []string{string(gpu.Simple), string(gpu.Dynamic)} {
			prefix, suffix := "gpu-", "-"+alloc
			if strings.HasPrefix(name, prefix) && strings.HasSuffix(name, suffix) {
				app := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
				study.Ticks[alloc][app] = simSeconds * 1e9 // 1 GHz shader
			}
		}
	}
	return study, nil
}

// Speedup returns Figure 9's quantity: dynamic-allocator speedup
// normalized to the simple allocator (>1 = dynamic faster).
func (s *GPUStudy) Speedup(app string) float64 {
	d := s.Ticks[string(gpu.Dynamic)][app]
	if d == 0 {
		return 0
	}
	return s.Ticks[string(gpu.Simple)][app] / d
}

// MeanSimpleAdvantage is the paper's headline: the mean of simple's
// per-app relative performance (1.08 = simple 8% better on average).
func (s *GPUStudy) MeanSimpleAdvantage() float64 {
	var vals []float64
	for _, app := range s.Names {
		if sp := s.Speedup(app); sp > 0 {
			vals = append(vals, 1/sp)
		}
	}
	return analysis.Mean(vals)
}

// RenderFig9 renders Figure 9.
func (s *GPUStudy) RenderFig9() string {
	ser := analysis.Series{Name: "dynamic/simple"}
	for _, app := range s.Names {
		ser.Labels = append(ser.Labels, app)
		ser.Values = append(ser.Values, s.Speedup(app))
	}
	chart := analysis.BarChart(
		"Figure 9: GPU speedup with dynamic register allocator, normalized to simple",
		[]analysis.Series{ser}, 40)
	return chart + fmt.Sprintf("mean simple-over-dynamic advantage: %.3f (paper: ~1.08)\n",
		s.MeanSimpleAdvantage())
}

// RenderTable3 prints the GPU configuration (Table III).
func RenderTable3() string {
	cfg := gpu.Config{}
	cfg.Defaults()
	var sb strings.Builder
	sb.WriteString("== Table III: Key Configuration Parameters for Use-Case 3 ==\n")
	rows := [][2]string{
		{"Number of CUs", fmt.Sprint(cfg.CUs)},
		{"SIMD16s (vector ALUs)", fmt.Sprintf("%d per CU", cfg.SIMDsPerCU)},
		{"GPU Frequency", "1 GHz"},
		{"Max Wavefronts", fmt.Sprintf("%d per SIMD16 (%d per CU)",
			cfg.MaxWavesPerSIMD, cfg.MaxWavesPerSIMD*cfg.SIMDsPerCU)},
		{"Vector Registers", fmt.Sprintf("%dK per CU", cfg.VRegsPerCU/1024)},
		{"Scalar Registers", fmt.Sprintf("%dK per CU", cfg.SRegsPerCU/1024)},
		{"LDS", fmt.Sprintf("%d KB per CU", cfg.LDSPerCU/1024)},
		{"L1 instruction cache", "32 KB shared between every 4 CUs"},
		{"L1 data caches (1 per CU)", "16 KB per CU"},
		{"Unified L2 cache", "256 KB"},
		{"Main Memory", "1 channel, DDR3_1600_8x8"},
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-28s %s\n", r[0], r[1])
	}
	return sb.String()
}

// RenderTable4 prints the Table IV benchmark/input list.
func RenderTable4() string {
	var sb strings.Builder
	sb.WriteString("== Table IV: Benchmarks & Input Sizes for Use-Case 3 ==\n")
	for _, w := range workloads.GPUWorkloads() {
		fmt.Fprintf(&sb, "%-26s %-12s %s\n", w.Kernel.Name, w.Suite, w.Input)
	}
	return sb.String()
}

// RenderTable1 prints the resource catalog (Table I).
func RenderTable1() string {
	return "== Table I: The gem5 resources ==\n" + resources.Table()
}
