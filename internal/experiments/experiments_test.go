package experiments

import (
	"runtime"
	"strings"
	"testing"

	"gem5art/internal/core/artifact"
	"gem5art/internal/database"
	"gem5art/internal/sim/cpu"
	"gem5art/internal/sim/kernel"
)

func TestEnvProvisioning(t *testing.T) {
	e, err := NewEnv("")
	if err != nil {
		t.Fatal(err)
	}
	if e.Gem5 == nil || e.Gem5Git == nil || e.BootDisk == nil {
		t.Fatal("missing core artifacts")
	}
	if len(e.Kernels) != 7 {
		t.Fatalf("%d kernels, want 7", len(e.Kernels))
	}
	if len(e.ParsecDisk) != 2 {
		t.Fatalf("%d parsec disks, want 2", len(e.ParsecDisk))
	}
	// Full provenance must be recoverable: the gem5 binary's closure
	// includes its repository.
	closure, err := e.Reg.Closure(e.Gem5)
	if err != nil {
		t.Fatal(err)
	}
	if len(closure) != 2 {
		t.Fatalf("gem5 closure = %d artifacts", len(closure))
	}
}

func TestParsecStudySubset(t *testing.T) {
	e, err := NewEnv("")
	if err != nil {
		t.Fatal(err)
	}
	study, err := e.RunParsecStudy(runtime.NumCPU(), []string{"blackscholes", "dedup"}, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range study.Apps {
		for _, os := range []string{"ubuntu-18.04", "ubuntu-20.04"} {
			for _, n := range study.Cores {
				if study.Seconds[os][app][n] <= 0 {
					t.Fatalf("missing datapoint %s/%s/%d", os, app, n)
				}
			}
		}
	}
	// Figure 6 sign for blackscholes: 18.04 slower.
	if study.Diff("blackscholes", 1) <= 0 {
		t.Errorf("blackscholes 1-core diff = %v, want > 0", study.Diff("blackscholes", 1))
	}
	// Figure 7: speedups exist and are sublinear.
	sp := study.Speedup("ubuntu-20.04", "blackscholes", 8)
	if sp < 1.5 || sp > 8 {
		t.Errorf("speedup = %v", sp)
	}
	fig6 := study.RenderFig6()
	if !strings.Contains(fig6, "Figure 6") || !strings.Contains(fig6, "blackscholes") {
		t.Fatalf("fig6 render:\n%s", fig6)
	}
	if !strings.Contains(study.RenderFig7(), "ubuntu-20.04") {
		t.Fatal("fig7 render missing series")
	}
}

func TestBootSweepSubset(t *testing.T) {
	e, err := NewEnv("")
	if err != nil {
		t.Fatal(err)
	}
	cells := []kernel.Spec{
		{Kernel: "5.4.49", CPU: cpu.KVM, Mem: "classic", Cores: 1, Boot: kernel.BootInit},
		{Kernel: "4.4.186", CPU: cpu.O3, Mem: "ruby.MI_example", Cores: 8, Boot: kernel.BootSystemd},
		{Kernel: "5.4.49", CPU: cpu.Atomic, Mem: "ruby.MI_example", Cores: 1, Boot: kernel.BootInit},
	}
	study, err := e.RunBootSweep(2, cells)
	if err != nil {
		t.Fatal(err)
	}
	if got := study.Outcome[cells[0].String()]; got != "success" {
		t.Errorf("kvm cell = %s", got)
	}
	if got := study.Outcome[cells[1].String()]; got != "deadlock" {
		t.Errorf("MI deadlock cell = %s", got)
	}
	if got := study.Outcome[cells[2].String()]; got != "unsupported" {
		t.Errorf("atomic-on-ruby cell = %s", got)
	}
	if !strings.Contains(study.Summary(), "3 cells") {
		t.Fatalf("summary: %s", study.Summary())
	}
}

func TestGPUStudySubset(t *testing.T) {
	e, err := NewEnv("")
	if err != nil {
		t.Fatal(err)
	}
	study, err := e.RunGPUStudy(runtime.NumCPU(), []string{"FAMutex", "MatrixTranspose"})
	if err != nil {
		t.Fatal(err)
	}
	if sp := study.Speedup("FAMutex"); sp > 0.75 || sp <= 0 {
		t.Errorf("FAMutex speedup = %v", sp)
	}
	if sp := study.Speedup("MatrixTranspose"); sp < 1.1 {
		t.Errorf("MatrixTranspose speedup = %v", sp)
	}
	if !strings.Contains(study.RenderFig9(), "Figure 9") {
		t.Fatal("fig9 render")
	}
}

func TestTableRenderers(t *testing.T) {
	t1 := RenderTable1()
	if !strings.Contains(t1, "boot-exit") || !strings.Contains(t1, "hip-samples") {
		t.Fatalf("table 1:\n%s", t1)
	}
	t2 := RenderTable2()
	if !strings.Contains(t2, "TimingSimpleCPU") || !strings.Contains(t2, "simmedium") {
		t.Fatalf("table 2:\n%s", t2)
	}
	t3 := RenderTable3()
	for _, want := range []string{"Number of CUs", "4", "8K per CU", "64 KB per CU"} {
		if !strings.Contains(t3, want) {
			t.Fatalf("table 3 missing %q:\n%s", want, t3)
		}
	}
	t4 := RenderTable4()
	if !strings.Contains(t4, "FAMutex") || !strings.Contains(t4, "NCHW = 100, 3, 256, 256") {
		t.Fatalf("table 4:\n%s", t4)
	}
	if got := strings.Count(t4, "\n"); got != 30 { // title + 29 rows
		t.Fatalf("table 4 rows = %d", got)
	}
}

func TestRunsRecordedInDatabase(t *testing.T) {
	e, err := NewEnv("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunGPUStudy(2, []string{"2dshfl"}); err != nil {
		t.Fatal(err)
	}
	runs := e.DB().Collection("runs").Find(database.Doc{"status": "done"})
	if len(runs) != 2 {
		t.Fatalf("%d run documents", len(runs))
	}
	// Every run references artifacts that exist.
	for _, d := range runs {
		arts := d["artifacts"].(map[string]any)
		for field, id := range arts {
			if _, err := e.Reg.Get(id.(string)); err != nil {
				t.Fatalf("run references missing %s artifact: %v", field, err)
			}
		}
	}
	if n := len(artifactNames(e.Reg)); n < 10 {
		t.Fatalf("only %d artifacts registered", n)
	}
}

func artifactNames(reg *artifact.Registry) []string {
	var out []string
	for _, a := range reg.All() {
		out = append(out, a.Name)
	}
	return out
}

func TestShortKernel(t *testing.T) {
	if shortKernel("4.14.134") != "4.14" || shortKernel("5.4.49") != "5.4" {
		t.Fatal("shortKernel")
	}
}

func TestEnergySweepSubset(t *testing.T) {
	e, err := NewEnv("")
	if err != nil {
		t.Fatal(err)
	}
	kernels := []kernel.Version{"4.4.186", "5.4.49"}
	cpus := []cpu.Model{cpu.Timing, cpu.O3}
	study, err := e.RunEnergySweep(2, kernels, cpus)
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(study.Rows))
	}
	for _, r := range study.Rows {
		if r.Joules <= 0 || r.Watts <= 0 || r.EDP <= 0 {
			t.Errorf("%s: joules=%v watts=%v edp=%v", r.Name, r.Joules, r.Watts, r.EDP)
		}
	}
	// O3 dissipates more per instruction and more leakage than Timing,
	// so its average power must be higher; but it also finishes the boot
	// in less simulated time, so its energy-delay product must be lower
	// (race-to-idle).
	joules := func(k kernel.Version, c cpu.Model) (j, w, e float64) {
		for _, r := range study.Rows {
			if r.Params["kernel"] == string(k) && r.Params["cpu"] == string(c) {
				return r.Joules, r.Watts, r.EDP
			}
		}
		return 0, 0, 0
	}
	for _, k := range kernels {
		_, o3W, o3EDP := joules(k, cpu.O3)
		_, tW, tEDP := joules(k, cpu.Timing)
		if o3W <= tW {
			t.Errorf("kernel %s: O3 %v W <= Timing %v W", k, o3W, tW)
		}
		if o3EDP >= tEDP {
			t.Errorf("kernel %s: O3 EDP %v >= Timing EDP %v", k, o3EDP, tEDP)
		}
	}
	if chart := study.JoulesChart(); !strings.Contains(chart, "boot energy") ||
		!strings.Contains(chart, string(cpu.O3)) {
		t.Fatalf("joules chart:\n%s", chart)
	}
	if chart := study.EDPChart(); !strings.Contains(chart, "EDP") {
		t.Fatalf("edp chart:\n%s", chart)
	}
	csv := study.CSV()
	if !strings.Contains(csv, "joules") || !strings.Contains(csv, "O3CPU") {
		t.Fatalf("csv:\n%s", csv)
	}
	if !strings.Contains(study.Summary(), "4 cells") {
		t.Fatalf("summary: %s", study.Summary())
	}
}
