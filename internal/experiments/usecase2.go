package experiments

import (
	"fmt"

	"gem5art/internal/analysis"
	"gem5art/internal/core/run"
	"gem5art/internal/database"
	"gem5art/internal/sim/cpu"
	"gem5art/internal/sim/kernel"
)

// BootStudy holds use case 2's results: the Linux boot sweep (Figure 8).
type BootStudy struct {
	Cells   []kernel.Spec
	Outcome map[string]string // Spec.String() -> outcome
}

// RunBootSweep executes boot cells through the gem5art stack. cells of
// nil means the paper's full 480-cell cross product.
func (e *Env) RunBootSweep(workers int, cells []kernel.Spec) (*BootStudy, error) {
	if cells == nil {
		cells = kernel.Sweep()
	}
	var specs []run.FSSpec
	for i, c := range cells {
		name := fmt.Sprintf("boot-%04d-%s-%s-%s-%dc-%s",
			i, c.Kernel, c.CPU, c.Mem, c.Cores, c.Boot)
		specs = append(specs, e.fsSpec(name, "configs/run_exit.py", string(c.Kernel),
			e.BootDisk, []string{
				"kernel=" + string(c.Kernel),
				"cpu=" + string(c.CPU),
				"mem_sys=" + c.Mem,
				fmt.Sprintf("num_cpus=%d", c.Cores),
				"boot_type=" + string(c.Boot),
			}))
	}
	if err := e.launchAll("use-case-2-boot", workers, specs); err != nil {
		return nil, err
	}

	study := &BootStudy{Cells: cells, Outcome: map[string]string{}}
	rows := analysis.ExtractRuns(e.DB(), database.Doc{
		"run_script": "configs/run_exit.py", "status": "done",
	})
	for _, r := range rows {
		spec := kernel.Spec{
			Kernel: kernel.Version(r.Params["kernel"]),
			CPU:    cpu.Model(r.Params["cpu"]),
			Mem:    r.Params["mem_sys"],
			Cores:  atoiSafe(r.Params["num_cpus"]),
			Boot:   kernel.BootType(r.Params["boot_type"]),
		}
		study.Outcome[spec.String()] = r.Outcome
	}
	return study, nil
}

// Counts aggregates outcomes, optionally restricted to one CPU model.
func (s *BootStudy) Counts(model cpu.Model) map[string]int {
	out := map[string]int{}
	for _, c := range s.Cells {
		if model != "" && c.CPU != model {
			continue
		}
		out[s.Outcome[c.String()]]++
	}
	return out
}

// outcomeGlyph compresses an outcome for the matrix cells.
func outcomeGlyph(o string) string {
	switch kernel.Outcome(o) {
	case kernel.Success:
		return "ok"
	case kernel.Unsupported:
		return "--"
	case kernel.KernelPanic:
		return "PA"
	case kernel.SimCrash:
		return "SF"
	case kernel.Deadlock:
		return "DL"
	case kernel.Timeout:
		return "TO"
	}
	return "??"
}

// RenderFig8 renders Figure 8 as one matrix per (boot type, memory
// system): rows are CPU models, columns are kernel x core-count.
func (s *BootStudy) RenderFig8() string {
	out := ""
	for _, boot := range kernel.BootTypes {
		for _, mem := range kernel.MemSystems {
			var cols []string
			for _, k := range kernel.BootKernels {
				for _, n := range kernel.CoreCounts {
					cols = append(cols, fmt.Sprintf("%s/%d", shortKernel(k), n))
				}
			}
			var rows []string
			for _, m := range cpu.AllModels {
				rows = append(rows, string(m))
			}
			title := fmt.Sprintf("Figure 8 (%s boot, %s): ok=success --=unsupported PA=panic SF=segfault DL=deadlock TO=timeout",
				boot, mem)
			out += analysis.Matrix(title, rows, cols, func(r, c string) string {
				var kv kernel.Version
				var cores int
				for _, k := range kernel.BootKernels {
					for _, n := range kernel.CoreCounts {
						if fmt.Sprintf("%s/%d", shortKernel(k), n) == c {
							kv, cores = k, n
						}
					}
				}
				spec := kernel.Spec{Kernel: kv, CPU: cpu.Model(r), Mem: mem,
					Cores: cores, Boot: boot}
				return outcomeGlyph(s.Outcome[spec.String()])
			})
			out += "\n"
		}
	}
	return out
}

func shortKernel(v kernel.Version) string {
	s := string(v)
	// "4.14.134" -> "4.14"
	dots := 0
	for i, c := range s {
		if c == '.' {
			dots++
			if dots == 2 {
				return s[:i]
			}
		}
	}
	return s
}

// Summary renders the O3 narrative numbers the paper reports.
func (s *BootStudy) Summary() string {
	all := s.Counts("")
	o3 := s.Counts(cpu.O3)
	return fmt.Sprintf(
		"boot sweep: %d cells; all outcomes %v\nO3CPU: success=%d panic=%d segfault=%d deadlock=%d timeout=%d unsupported=%d",
		len(s.Cells), all,
		o3["success"], o3["kernel-panic"], o3["sim-crash"], o3["deadlock"],
		o3["timeout"], o3["unsupported"])
}
