package gitstore

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestCommitAndCheckout(t *testing.T) {
	r := NewRepo("https://gem5.googlesource.com/public/gem5")
	h1 := r.Commit(Tree{"SConstruct": []byte("v1")}, "initial")
	h2 := r.Commit(Tree{"SConstruct": []byte("v2"), "README": []byte("gem5")}, "update")
	if h1 == h2 {
		t.Fatal("different trees produced the same revision hash")
	}
	tree1, err := r.Checkout(h1)
	if err != nil {
		t.Fatal(err)
	}
	if string(tree1["SConstruct"]) != "v1" {
		t.Fatalf("checkout of %s returned %q", h1, tree1["SConstruct"])
	}
	if _, ok := tree1["README"]; ok {
		t.Fatal("old revision contains a file added later")
	}
	if r.Head() != h2 {
		t.Fatalf("Head = %s, want %s", r.Head(), h2)
	}
}

func TestCheckoutIsIsolated(t *testing.T) {
	r := NewRepo("u")
	h := r.Commit(Tree{"f": []byte("original")}, "c")
	tree, err := r.Checkout(h)
	if err != nil {
		t.Fatal(err)
	}
	tree["f"][0] = 'X'
	again, err := r.Checkout(h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again["f"], []byte("original")) {
		t.Fatal("mutating a checkout corrupted history")
	}
}

func TestCommitDeepCopiesInput(t *testing.T) {
	r := NewRepo("u")
	src := Tree{"f": []byte("abc")}
	h := r.Commit(src, "c")
	src["f"][0] = 'Z'
	got, err := r.ReadFile(h, "f")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("history saw caller mutation: %q", got)
	}
}

func TestAbbreviatedRevision(t *testing.T) {
	r := NewRepo("u")
	h := r.Commit(Tree{"f": []byte("x")}, "c")
	short := h[:10]
	full, err := r.RevParse(short)
	if err != nil {
		t.Fatal(err)
	}
	if full != h {
		t.Fatalf("RevParse(%s) = %s, want %s", short, full, h)
	}
	if _, err := r.RevParse("ZZZZ"); err == nil {
		t.Fatal("unknown revision resolved")
	}
}

func TestHeadRevisionKeywords(t *testing.T) {
	r := NewRepo("u")
	if _, err := r.Checkout("HEAD"); err == nil {
		t.Fatal("HEAD of empty repo resolved")
	}
	h := r.Commit(Tree{"f": []byte("x")}, "c")
	for _, rev := range []string{"HEAD", ""} {
		got, err := r.RevParse(rev)
		if err != nil {
			t.Fatalf("RevParse(%q): %v", rev, err)
		}
		if got != h {
			t.Fatalf("RevParse(%q) = %s, want %s", rev, got, h)
		}
	}
}

func TestLogLinksParents(t *testing.T) {
	r := NewRepo("u")
	h1 := r.Commit(Tree{"f": []byte("1")}, "first")
	h2 := r.Commit(Tree{"f": []byte("2")}, "second")
	log := r.Log()
	if len(log) != 2 {
		t.Fatalf("log has %d entries", len(log))
	}
	if log[0].Hash != h1 || log[0].Parent != "" {
		t.Fatalf("root commit: %+v", log[0])
	}
	if log[1].Hash != h2 || log[1].Parent != h1 {
		t.Fatalf("second commit: %+v", log[1])
	}
}

func TestIdenticalTreesInDifferentReposDiffer(t *testing.T) {
	a := NewRepo("https://a")
	b := NewRepo("https://b")
	tree := Tree{"f": []byte("same")}
	if a.Commit(tree, "m") == b.Commit(tree, "m") {
		t.Fatal("revision hash does not incorporate repository URL")
	}
}

func TestReadFileMissing(t *testing.T) {
	r := NewRepo("u")
	h := r.Commit(Tree{"exists": []byte("y")}, "c")
	if _, err := r.ReadFile(h, "missing"); err == nil {
		t.Fatal("ReadFile of missing path succeeded")
	}
}

func TestStoreCloneAndCreate(t *testing.T) {
	s := NewStore()
	r1 := s.Create("https://gem5")
	r2 := s.Create("https://gem5")
	if r1 != r2 {
		t.Fatal("Create of existing URL returned a new repo")
	}
	if _, err := s.Clone("https://nope"); err == nil {
		t.Fatal("Clone of unknown URL succeeded")
	}
	got, err := s.Clone("https://gem5")
	if err != nil || got != r1 {
		t.Fatalf("Clone = %v, %v", got, err)
	}
	s.Create("https://linux")
	urls := s.URLs()
	if len(urls) != 2 || urls[0] != "https://gem5" || urls[1] != "https://linux" {
		t.Fatalf("URLs = %v", urls)
	}
}

// Property: committing any tree and checking it out returns the same
// content, and the revision hash is deterministic for the same history.
func TestCheckoutRoundTripProperty(t *testing.T) {
	f := func(paths []string, blobs [][]byte) bool {
		tree := Tree{}
		for i, p := range paths {
			if p == "" {
				continue
			}
			var b []byte
			if i < len(blobs) {
				b = blobs[i]
			}
			tree[p] = b
		}
		r1 := NewRepo("prop")
		r2 := NewRepo("prop")
		h1 := r1.Commit(tree, "m")
		h2 := r2.Commit(tree, "m")
		if h1 != h2 {
			return false
		}
		got, err := r1.Checkout(h1)
		if err != nil || len(got) != len(tree) {
			return false
		}
		for p, want := range tree {
			if !bytes.Equal(got[p], want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRevisionHashFormat(t *testing.T) {
	r := NewRepo("u")
	h := r.Commit(Tree{"f": []byte("x")}, "c")
	if len(h) != 40 {
		t.Fatalf("revision hash length %d, want 40 (sha1 hex)", len(h))
	}
	if strings.ToLower(h) != h {
		t.Fatal("revision hash is not lowercase hex")
	}
}
