// Package gitstore implements a minimal content-addressed version store
// standing in for the git repositories gem5art artifacts reference. It
// provides the three properties gem5art relies on:
//
//   - every repository has a URL that identifies where it came from,
//   - every state of the tree has a stable revision hash, and
//   - any revision can be checked out again byte-for-byte, so an
//     experiment recorded as (url, hash) is reproducible.
//
// Revisions form a linear history per repository (branches are out of
// scope for gem5art's usage, which always records a single revision).
package gitstore

import (
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Tree is a snapshot of a repository's files: path -> content.
type Tree map[string][]byte

// Commit is one recorded state of a repository.
type Commit struct {
	Hash    string // revision hash (hex SHA-1 over the tree and metadata)
	Message string
	Parent  string // hash of the previous commit, "" for the root
	tree    Tree
}

// Repo is a versioned tree of files identified by a URL.
type Repo struct {
	mu      sync.RWMutex
	url     string
	commits []*Commit          // in commit order
	byHash  map[string]*Commit // hash -> commit
}

// NewRepo creates an empty repository with the given origin URL.
func NewRepo(url string) *Repo {
	return &Repo{url: url, byHash: make(map[string]*Commit)}
}

// URL returns the repository's origin URL.
func (r *Repo) URL() string { return r.url }

// Commit records a snapshot of the given tree and returns its revision
// hash. The tree is deep-copied; later mutations do not affect history.
func (r *Repo) Commit(tree Tree, message string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	parent := ""
	if len(r.commits) > 0 {
		parent = r.commits[len(r.commits)-1].Hash
	}
	c := &Commit{
		Message: message,
		Parent:  parent,
		tree:    copyTree(tree),
	}
	c.Hash = hashCommit(r.url, parent, message, c.tree)
	r.commits = append(r.commits, c)
	r.byHash[c.Hash] = c
	return c.Hash
}

// Head returns the hash of the latest commit, or "" if the repository is
// empty.
func (r *Repo) Head() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.commits) == 0 {
		return ""
	}
	return r.commits[len(r.commits)-1].Hash
}

// Checkout returns a deep copy of the tree at the given revision. The
// revision may be abbreviated to a unique prefix, mirroring git's
// short-hash checkout used in the paper's Figure 3.
func (r *Repo) Checkout(rev string) (Tree, error) {
	c, err := r.resolve(rev)
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return copyTree(c.tree), nil
}

// RevParse resolves a possibly abbreviated revision to its full hash.
func (r *Repo) RevParse(rev string) (string, error) {
	c, err := r.resolve(rev)
	if err != nil {
		return "", err
	}
	return c.Hash, nil
}

// Log returns all commits, oldest first.
func (r *Repo) Log() []Commit {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Commit, len(r.commits))
	for i, c := range r.commits {
		out[i] = Commit{Hash: c.Hash, Message: c.Message, Parent: c.Parent}
	}
	return out
}

// ReadFile returns the content of one file at a revision.
func (r *Repo) ReadFile(rev, path string) ([]byte, error) {
	c, err := r.resolve(rev)
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	data, ok := c.tree[path]
	if !ok {
		return nil, fmt.Errorf("gitstore: %s: no file %q at %s", r.url, path, rev)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

func (r *Repo) resolve(rev string) (*Commit, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if rev == "" || rev == "HEAD" {
		if len(r.commits) == 0 {
			return nil, fmt.Errorf("gitstore: %s: empty repository", r.url)
		}
		return r.commits[len(r.commits)-1], nil
	}
	if c, ok := r.byHash[rev]; ok {
		return c, nil
	}
	var found *Commit
	for h, c := range r.byHash {
		if strings.HasPrefix(h, rev) {
			if found != nil {
				return nil, fmt.Errorf("gitstore: %s: ambiguous revision %q", r.url, rev)
			}
			found = c
		}
	}
	if found == nil {
		return nil, fmt.Errorf("gitstore: %s: unknown revision %q", r.url, rev)
	}
	return found, nil
}

func copyTree(t Tree) Tree {
	cp := make(Tree, len(t))
	for p, data := range t {
		b := make([]byte, len(data))
		copy(b, data)
		cp[p] = b
	}
	return cp
}

func hashCommit(url, parent, message string, tree Tree) string {
	h := sha1.New()
	fmt.Fprintf(h, "url %s\nparent %s\nmessage %s\n", url, parent, message)
	paths := make([]string, 0, len(tree))
	for p := range tree {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		fmt.Fprintf(h, "file %s %d\n", p, len(tree[p]))
		h.Write(tree[p])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Store is a collection of repositories keyed by URL — the analogue of the
// set of remotes (gem5.googlesource.com, kernel.org, ...) an experiment
// clones from.
type Store struct {
	mu    sync.RWMutex
	repos map[string]*Repo
}

// NewStore creates an empty repository store.
func NewStore() *Store {
	return &Store{repos: make(map[string]*Repo)}
}

// Create creates a new repository with the given URL. Creating a URL that
// already exists returns the existing repository.
func (s *Store) Create(url string) *Repo {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.repos[url]; ok {
		return r
	}
	r := NewRepo(url)
	s.repos[url] = r
	return r
}

// Clone returns the repository at url, mirroring `git clone`.
func (s *Store) Clone(url string) (*Repo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.repos[url]
	if !ok {
		return nil, fmt.Errorf("gitstore: no repository at %q", url)
	}
	return r, nil
}

// URLs returns all repository URLs in sorted order.
func (s *Store) URLs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.repos))
	for u := range s.repos {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}
