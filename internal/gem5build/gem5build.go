// Package gem5build models the left column of the paper's Figure 1:
// compiling the simulator source at a pinned revision with a static
// configuration (target ISA, build variant, baked-in Ruby protocol, GPU
// model) into a simulator-executable artifact. The produced binary bytes
// are a deterministic function of (revision, configuration), so the
// artifact hash changes exactly when the inputs do — the property
// gem5art's reproducibility story rests on.
package gem5build

import (
	"fmt"
	"strings"

	"gem5art/internal/core/artifact"
	"gem5art/internal/gitstore"
)

// StaticConfig is the compile-time configuration (e.g. "targeting the
// x86 ISA with a two level cache hierarchy").
type StaticConfig struct {
	ISA      string // X86, ARM, RISCV
	Variant  string // opt, debug, fast
	Protocol string // baked Ruby protocol ("" = MI_example default)
	GPU      bool   // build the GCN3_X86 variant (needed for use case 3)
}

// ValidISAs lists supported target ISAs.
var ValidISAs = []string{"X86", "ARM", "RISCV"}

// Validate checks the configuration.
func (c *StaticConfig) Validate() error {
	ok := false
	for _, isa := range ValidISAs {
		if c.ISA == isa {
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("gem5build: unknown ISA %q", c.ISA)
	}
	switch c.Variant {
	case "", "opt", "debug", "fast":
	default:
		return fmt.Errorf("gem5build: unknown variant %q", c.Variant)
	}
	if c.GPU && c.ISA != "X86" {
		return fmt.Errorf("gem5build: the GCN3 GPU model requires the X86 host ISA")
	}
	switch c.Protocol {
	case "", "MI_example", "MESI_Two_Level":
	default:
		return fmt.Errorf("gem5build: unknown protocol %q", c.Protocol)
	}
	return nil
}

// BuildDir returns the scons build directory ("X86", "GCN3_X86", ...).
func (c StaticConfig) BuildDir() string {
	if c.GPU {
		return "GCN3_" + c.ISA
	}
	return c.ISA
}

// Target returns the binary path under the source tree.
func (c StaticConfig) Target() string {
	variant := c.Variant
	if variant == "" {
		variant = "opt"
	}
	return fmt.Sprintf("build/%s/gem5.%s", c.BuildDir(), variant)
}

// SconsCommand returns the equivalent build command line.
func (c StaticConfig) SconsCommand() string {
	cmd := "scons " + c.Target() + " -j8"
	if c.Protocol != "" {
		cmd += " PROTOCOL=" + c.Protocol
	}
	return cmd
}

// Build "compiles" the simulator: it resolves the revision, synthesizes
// the deterministic binary content, and registers the result as an
// artifact whose input is the source repository artifact.
func Build(reg *artifact.Registry, repoArt *artifact.Artifact, repo *gitstore.Repo,
	rev string, cfg StaticConfig) (*artifact.Artifact, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fullRev, err := repo.RevParse(rev)
	if err != nil {
		return nil, fmt.Errorf("gem5build: %w", err)
	}
	content := fmt.Sprintf("gem5 executable\nrevision %s\nconfig %s protocol=%q gpu=%v\n",
		fullRev, cfg.Target(), cfg.Protocol, cfg.GPU)
	name := "gem5-" + strings.ToLower(cfg.BuildDir())
	return reg.Register(artifact.Options{
		Name:    name,
		Typ:     "gem5 binary",
		CWD:     "gem5/",
		Path:    "gem5/" + cfg.Target(),
		Command: fmt.Sprintf("cd gem5; git checkout %s; %s", fullRev[:12], cfg.SconsCommand()),
		Documentation: fmt.Sprintf("gem5 built at %s with the %s static configuration",
			fullRev[:12], cfg.BuildDir()),
		Content: []byte(content),
		Inputs:  []*artifact.Artifact{repoArt},
	})
}

// SupportsGPU reports whether a gem5 binary artifact was built with the
// GCN3 GPU model — the check use case 3's run script performs.
func SupportsGPU(binary *artifact.Artifact) bool {
	return strings.Contains(binary.Path, "GCN3_")
}
