package gem5build

import (
	"strings"
	"testing"

	"gem5art/internal/core/artifact"
	"gem5art/internal/database"
	"gem5art/internal/gitstore"
)

func setup(t *testing.T) (*artifact.Registry, *artifact.Artifact, *gitstore.Repo, string) {
	t.Helper()
	reg := artifact.NewRegistry(database.MustOpen(""))
	repo := gitstore.NewRepo("https://gem5.googlesource.com/public/gem5")
	rev := repo.Commit(gitstore.Tree{"SConstruct": []byte("v20.1.0.4")}, "v20.1.0.4")
	repoArt, err := reg.Register(artifact.Options{Name: "gem5-repo", Typ: "git repository",
		Path: "gem5/", Repo: repo})
	if err != nil {
		t.Fatal(err)
	}
	return reg, repoArt, repo, rev
}

func TestBuildProducesLinkedArtifact(t *testing.T) {
	reg, repoArt, repo, rev := setup(t)
	bin, err := Build(reg, repoArt, repo, rev, StaticConfig{ISA: "X86"})
	if err != nil {
		t.Fatal(err)
	}
	if bin.Path != "gem5/build/X86/gem5.opt" {
		t.Fatalf("path = %s", bin.Path)
	}
	if len(bin.InputIDs) != 1 || bin.InputIDs[0] != repoArt.ID {
		t.Fatal("binary not linked to its source repository")
	}
	if !strings.Contains(bin.Command, "scons build/X86/gem5.opt") ||
		!strings.Contains(bin.Command, "git checkout "+rev[:12]) {
		t.Fatalf("command = %s", bin.Command)
	}
}

func TestBuildDeterministicPerInputs(t *testing.T) {
	reg, repoArt, repo, rev := setup(t)
	a, err := Build(reg, repoArt, repo, rev, StaticConfig{ISA: "X86"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(reg, repoArt, repo, rev, StaticConfig{ISA: "X86"})
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID {
		t.Fatal("identical build created a new artifact")
	}
	// A new revision yields a new binary artifact.
	rev2 := repo.Commit(gitstore.Tree{"SConstruct": []byte("v20.1.0.5")}, "fix")
	c, err := Build(reg, repoArt, repo, rev2, StaticConfig{ISA: "X86"})
	if err != nil {
		t.Fatal(err)
	}
	if c.Hash == a.Hash {
		t.Fatal("new revision produced the same binary hash")
	}
	// A different static config also yields a different artifact.
	d, err := Build(reg, repoArt, repo, rev, StaticConfig{ISA: "X86", Protocol: "MESI_Two_Level"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Hash == a.Hash {
		t.Fatal("different protocol produced the same binary hash")
	}
}

func TestGPUVariant(t *testing.T) {
	reg, repoArt, repo, rev := setup(t)
	gpuBin, err := Build(reg, repoArt, repo, rev, StaticConfig{ISA: "X86", GPU: true})
	if err != nil {
		t.Fatal(err)
	}
	if gpuBin.Path != "gem5/build/GCN3_X86/gem5.opt" {
		t.Fatalf("gpu path = %s", gpuBin.Path)
	}
	if !SupportsGPU(gpuBin) {
		t.Fatal("GCN3 build not recognized")
	}
	cpuBin, err := Build(reg, repoArt, repo, rev, StaticConfig{ISA: "X86"})
	if err != nil {
		t.Fatal(err)
	}
	if SupportsGPU(cpuBin) {
		t.Fatal("plain X86 build claims GPU support")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []StaticConfig{
		{ISA: "MIPS"},
		{ISA: "X86", Variant: "turbo"},
		{ISA: "ARM", GPU: true},
		{ISA: "X86", Protocol: "MOESI_hammer"},
	}
	for _, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", cfg)
		}
	}
	good := StaticConfig{ISA: "RISCV", Variant: "debug"}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if good.Target() != "build/RISCV/gem5.debug" {
		t.Fatalf("target = %s", good.Target())
	}
}

func TestBuildRejectsUnknownRevision(t *testing.T) {
	reg, repoArt, repo, _ := setup(t)
	if _, err := Build(reg, repoArt, repo, "deadbeef", StaticConfig{ISA: "X86"}); err == nil {
		t.Fatal("unknown revision built")
	}
}
