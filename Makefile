GO ?= go

.PHONY: build vet test race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the gem5bench suites:
#   telemetry — event-loop instrumentation overhead (budget: <5%),
#     written to BENCH_telemetry.json;
#   storage — journaled insert cost, indexed-vs-scan FindOne (required:
#     >=5x at 10k docs), journal-vs-snapshot persistence, written to
#     BENCH_storage.json;
#   cache — cold vs warm launch of an identical hack-back matrix through
#     the simulation cache (required: warm >=5x faster, exactly one boot
#     per boot class), written to BENCH_cache.json.
# Exits non-zero if any suite misses its budget.
bench:
	$(GO) run ./cmd/gem5bench -suite telemetry -out BENCH_telemetry.json
	$(GO) run ./cmd/gem5bench -suite storage -out BENCH_storage.json
	$(GO) run ./cmd/gem5bench -suite cache -out BENCH_cache.json

ci: build vet race
