GO ?= go

.PHONY: build fmt vet test race chaos bench parsim-race ci

build:
	$(GO) build ./...

# fmt fails when any file needs gofmt, printing the offenders.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the fault-injection suites under the race detector: the
# seeded network-chaos proxy tests, the broker/worker session and
# durability tests, the shard replication/failover unit suite, and the
# end-to-end launches that kill the broker, partition each worker, flap
# every connection, rolling-kill all four shard primaries mid-launch,
# and inject every disk-fault class (EIO, ENOSPC, short write, fsync
# failure, torn rename, torn write) into the broker's durable queue.
# The invariant under test: every launch completes with zero lost and
# zero duplicated job results, and a store that cannot persist degrades
# to read-only instead of acknowledging doomed commits.
#
# The e2e launches run as a seed matrix (CHAOS_SEEDS) so a flake on one
# seed is a deterministic repro, not a shrug. Each seed's transcript is
# written to CHAOS_ARTIFACTS; on failure the tests also drop a repro
# report (seed, fired faults — including the DiskChaos fired-fault log —
# fleet state snapshot) plus a scrub/quarantine report and the shard
# brokers' journals there. CHAOS_JOBS sizes the sharded launch.
CHAOS_SEEDS ?= 4242 1337 90210
CHAOS_JOBS ?= 10000
CHAOS_ARTIFACTS ?= $(CURDIR)/chaos-artifacts
chaos:
	$(GO) test -race -count=1 ./internal/faultinject/ ./internal/core/tasks/ ./internal/core/tasks/shard/
	@mkdir -p $(CHAOS_ARTIFACTS); rc=0; \
	for seed in $(CHAOS_SEEDS); do \
		log=$(CHAOS_ARTIFACTS)/chaos-seed$$seed.log; \
		echo "=== chaos e2e: seed $$seed ($(CHAOS_JOBS) jobs) ==="; \
		if CHAOS_SEED=$$seed CHAOS_JOBS=$(CHAOS_JOBS) CHAOS_ARTIFACTS=$(CHAOS_ARTIFACTS) \
			$(GO) test -race -count=1 -run 'TestChaos|TestEndToEnd' ./internal/core/launch/ >$$log 2>&1; then \
			echo "seed $$seed: PASS"; \
		else \
			echo "seed $$seed: FAIL"; cat $$log; rc=1; \
		fi; \
	done; \
	exit $$rc

# bench runs the gem5bench suites:
#   telemetry — event-loop instrumentation overhead (budget: <5%),
#     written to BENCH_telemetry.json;
#   storage — journaled insert cost, indexed-vs-scan FindOne (required:
#     >=5x at 10k docs), journal-vs-snapshot persistence, written to
#     BENCH_storage.json;
#   cache — cold vs warm launch of an identical hack-back matrix through
#     the simulation cache (required: warm >=5x faster, exactly one boot
#     per boot class), written to BENCH_cache.json;
#   gateway — the same job batch submitted in-process vs through the
#     authenticated multi-tenant HTTP gateway (budget: <5% overhead),
#     written to BENCH_gateway.json;
#   parsim — 8-core O3+Ruby on the parallel component/port engine at
#     1/2/4/8 workers (required: bit-identical results at every worker
#     count, and >=2x speedup at 4 workers on hosts with >=4 CPUs),
#     written to BENCH_parsim.json;
#   scrub — the storage suite's journaled insert sweep with the
#     background integrity scrubber on a 100ms cadence (budget: <2% of
#     the sweep window spent verifying), written to BENCH_scrub.json.
# Exits non-zero if any suite misses its budget.
bench:
	$(GO) run ./cmd/gem5bench -suite telemetry -out BENCH_telemetry.json
	$(GO) run ./cmd/gem5bench -suite storage -out BENCH_storage.json
	$(GO) run ./cmd/gem5bench -suite cache -out BENCH_cache.json
	$(GO) run ./cmd/gem5bench -suite gateway -out BENCH_gateway.json
	$(GO) run ./cmd/gem5bench -suite parsim -out BENCH_parsim.json
	$(GO) run ./cmd/gem5bench -suite energy -out BENCH_energy.json
	$(GO) run ./cmd/gem5bench -suite scrub -out BENCH_scrub.json

# parsim-race runs the simulation kernel's test suite under the race
# detector: the scheduler's conservative windows plus the golden-stats
# determinism tests execute with real worker pools, so any cross-
# component data race the barrier protocol misses surfaces here.
parsim-race:
	$(GO) test -race -count=1 ./internal/sim/...

ci: fmt vet build race
