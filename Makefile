GO ?= go

.PHONY: build vet test race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs both gem5bench suites:
#   telemetry — event-loop instrumentation overhead (budget: <5%),
#     written to BENCH_telemetry.json;
#   storage — journaled insert cost, indexed-vs-scan FindOne (required:
#     >=5x at 10k docs), journal-vs-snapshot persistence, written to
#     BENCH_storage.json.
# Exits non-zero if either suite misses its budget.
bench:
	$(GO) run ./cmd/gem5bench -suite telemetry -out BENCH_telemetry.json
	$(GO) run ./cmd/gem5bench -suite storage -out BENCH_storage.json

ci: build vet race
