GO ?= go

.PHONY: build vet test race chaos bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the fault-injection suites under the race detector: the
# seeded network-chaos proxy tests, the broker/worker session and
# durability tests, and the end-to-end launches that kill the broker,
# partition each worker, and flap every connection mid-launch. The
# invariant under test: every launch completes with zero lost and zero
# duplicated job results.
chaos:
	$(GO) test -race -count=1 ./internal/faultinject/ ./internal/core/tasks/
	$(GO) test -race -count=1 -run 'TestChaos|TestEndToEnd' ./internal/core/launch/

# bench runs the gem5bench suites:
#   telemetry — event-loop instrumentation overhead (budget: <5%),
#     written to BENCH_telemetry.json;
#   storage — journaled insert cost, indexed-vs-scan FindOne (required:
#     >=5x at 10k docs), journal-vs-snapshot persistence, written to
#     BENCH_storage.json;
#   cache — cold vs warm launch of an identical hack-back matrix through
#     the simulation cache (required: warm >=5x faster, exactly one boot
#     per boot class), written to BENCH_cache.json.
# Exits non-zero if any suite misses its budget.
bench:
	$(GO) run ./cmd/gem5bench -suite telemetry -out BENCH_telemetry.json
	$(GO) run ./cmd/gem5bench -suite storage -out BENCH_storage.json
	$(GO) run ./cmd/gem5bench -suite cache -out BENCH_cache.json

ci: build vet race
