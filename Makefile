GO ?= go

.PHONY: build vet test race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench measures the telemetry overhead of the simulation event loop
# (instrumented vs uninstrumented) and writes BENCH_telemetry.json.
# Exits non-zero if the overhead exceeds the 5% budget.
bench:
	$(GO) run ./cmd/gem5bench -out BENCH_telemetry.json

ci: build vet race
