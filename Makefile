GO ?= go

.PHONY: build vet test race ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci: build vet race
