// Package gem5art is a from-scratch Go reproduction of "Enabling
// Reproducible and Agile Full-System Simulation" (Bruce et al., ISPASS
// 2021): the gem5art experiment-management framework, the gem5-resources
// catalog, and the full-system simulator substrate the paper's three use
// cases run on.
//
// The library lives under internal/; see README.md for the map,
// DESIGN.md for the system inventory, and EXPERIMENTS.md for the
// paper-vs-measured record. The root package exists to host the
// benchmark harness (bench_test.go), which regenerates every table and
// figure in the paper's evaluation.
package gem5art
