module gem5art

go 1.22
