// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§VI), plus ablations of the design choices DESIGN.md calls
// out. Run with:
//
//	go test -bench=. -benchmem
//
// Reported custom metrics carry the figures' headline numbers so a bench
// run doubles as a reproduction record (see EXPERIMENTS.md).
package gem5art_test

import (
	"fmt"
	"runtime"
	"testing"

	"gem5art/internal/core/artifact"
	"gem5art/internal/database"
	"gem5art/internal/experiments"
	"gem5art/internal/resources"
	"gem5art/internal/sim"
	"gem5art/internal/sim/cpu"
	"gem5art/internal/sim/gpu"
	"gem5art/internal/sim/isa"
	"gem5art/internal/sim/kernel"
	"gem5art/internal/workloads"
)

// BenchmarkTable1Resources regenerates Table I: the 17-entry resource
// catalog, building every unlicensed resource from its recipe.
func BenchmarkTable1Resources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reg := artifact.NewRegistry(database.MustOpen(""))
		built := 0
		for _, r := range resources.Catalog() {
			if r.Licensed {
				continue
			}
			if _, err := resources.Build(reg, r.Name, resources.BuildOptions{}); err != nil {
				b.Fatal(err)
			}
			built++
		}
		if built != 15 {
			b.Fatalf("built %d resources", built)
		}
	}
	b.ReportMetric(17, "catalog_entries")
}

// BenchmarkFig6ParsecOSDiff regenerates Figure 6: the 60-run PARSEC
// sweep across Ubuntu 18.04/20.04 and {1,2,8} cores on the Table II
// system, reporting how many applications run slower on 18.04 and how
// the absolute gap shrinks with cores.
func BenchmarkFig6ParsecOSDiff(b *testing.B) {
	var study *experiments.ParsecStudy
	for i := 0; i < b.N; i++ {
		env, err := experiments.NewEnv("")
		if err != nil {
			b.Fatal(err)
		}
		study, err = env.RunParsecStudy(runtime.NumCPU(), nil, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	slower1 := 0
	var gap1, gap8 float64
	for _, app := range study.Apps {
		if study.Diff(app, 1) > 0 {
			slower1++
		}
		gap1 += study.Diff(app, 1)
		gap8 += study.Diff(app, 8)
	}
	b.ReportMetric(float64(slower1), "apps_slower_on_1804_of_10")
	b.ReportMetric(gap1/gap8, "gap_narrowing_1c_over_8c")
}

// BenchmarkFig7ParsecSpeedup regenerates Figure 7: 1->8-core speedups
// per OS, reporting the mean speedup per image (20.04 slightly higher).
func BenchmarkFig7ParsecSpeedup(b *testing.B) {
	var study *experiments.ParsecStudy
	for i := 0; i < b.N; i++ {
		env, err := experiments.NewEnv("")
		if err != nil {
			b.Fatal(err)
		}
		study, err = env.RunParsecStudy(runtime.NumCPU(), nil, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	var s18, s20 float64
	for _, app := range study.Apps {
		s18 += study.Speedup(workloads.Ubuntu1804.Name, app, 8)
		s20 += study.Speedup(workloads.Ubuntu2004.Name, app, 8)
	}
	n := float64(len(study.Apps))
	b.ReportMetric(s18/n, "mean_speedup_ubuntu1804")
	b.ReportMetric(s20/n, "mean_speedup_ubuntu2004")
}

// BenchmarkFig8BootMatrix regenerates Figure 8: the full 480-cell boot
// cross product, reporting the paper's O3 failure taxonomy (27 panics,
// 11 segfaults, 4 deadlocks, 16 timeouts).
func BenchmarkFig8BootMatrix(b *testing.B) {
	var study *experiments.BootStudy
	for i := 0; i < b.N; i++ {
		env, err := experiments.NewEnv("")
		if err != nil {
			b.Fatal(err)
		}
		study, err = env.RunBootSweep(runtime.NumCPU(), nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	o3 := study.Counts(cpu.O3)
	b.ReportMetric(float64(len(study.Cells)), "boot_cells")
	b.ReportMetric(float64(o3["kernel-panic"]), "o3_kernel_panics")
	b.ReportMetric(float64(o3["sim-crash"]), "o3_segfaults")
	b.ReportMetric(float64(o3["deadlock"]), "o3_deadlocks")
	b.ReportMetric(float64(o3["timeout"]), "o3_timeouts")
	b.ReportMetric(float64(o3["success"]), "o3_successes")
}

// BenchmarkTable4GPUWorkloads regenerates Table IV: validates all 29
// workload descriptors against the Table III configuration and runs each
// once under the simple allocator.
func BenchmarkTable4GPUWorkloads(b *testing.B) {
	ws := workloads.GPUWorkloads()
	for i := 0; i < b.N; i++ {
		for _, w := range ws {
			if err := w.Kernel.Validate(gpu.Config{}); err != nil {
				b.Fatal(err)
			}
			if _, err := gpu.Run(gpu.Config{}, w.Kernel, gpu.Simple); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(ws)), "table4_workloads")
}

// BenchmarkFig9RegisterAllocators regenerates Figure 9: all 29 workloads
// under both allocators (58 runs through the gem5art stack), reporting
// the headline comparisons.
func BenchmarkFig9RegisterAllocators(b *testing.B) {
	var study *experiments.GPUStudy
	for i := 0; i < b.N; i++ {
		env, err := experiments.NewEnv("")
		if err != nil {
			b.Fatal(err)
		}
		study, err = env.RunGPUStudy(runtime.NumCPU(), nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(study.MeanSimpleAdvantage(), "mean_simple_advantage_paper_1.08")
	b.ReportMetric((1/study.Speedup("FAMutex")-1)*100, "famutex_pct_worse_paper_61")
	b.ReportMetric((1/study.Speedup("fwd_pool")-1)*100, "fwdpool_pct_worse_paper_22")
	b.ReportMetric(study.Speedup("MatrixTranspose"), "matrixtranspose_speedup")
}

// --- Ablations ---------------------------------------------------------

// BenchmarkAblationArtifactDedup measures registration cost as the
// database grows: the unique-index dedup path must not degrade insert
// latency into uselessness (the paper's duplicate-prevention guarantee).
func BenchmarkAblationArtifactDedup(b *testing.B) {
	for _, preload := range []int{0, 100, 1000} {
		b.Run(fmt.Sprintf("existing-%d", preload), func(b *testing.B) {
			reg := artifact.NewRegistry(database.MustOpen(""))
			for i := 0; i < preload; i++ {
				if _, err := reg.Register(artifact.Options{
					Name: fmt.Sprintf("a%d", i), Typ: "t", Path: "p",
					Content: []byte(fmt.Sprintf("content-%d", i)),
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := reg.Register(artifact.Options{
					Name: "fresh", Typ: "t", Path: "p",
					Content: []byte(fmt.Sprintf("fresh-%d", i)),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMemSystems compares the three memory systems on the
// same sharing-heavy workload, reporting simulated time (classic fastest
// and least faithful; MI_example slowest on shared data).
func BenchmarkAblationMemSystems(b *testing.B) {
	prog := func() *isa.Program {
		return isa.Generate(isa.GenSpec{Name: "shared", Seed: 11, Iterations: 400,
			BodyOps: 24, Mix: isa.Mix{Load: 0.4, Store: 0.1, Atomic: 0.05},
			FootprintWords: 1 << 12, SharedWords: 8})
	}
	for _, memName := range []string{"classic", "ruby.MI_example", "ruby.MESI_Two_Level"} {
		b.Run(memName, func(b *testing.B) {
			var ticks sim.Tick
			for i := 0; i < b.N; i++ {
				m := buildMem(b, memName, 4)
				system := cpu.NewSystem(cpu.Config{Model: cpu.Timing, Cores: 4}, m)
				for c := 0; c < 4; c++ {
					system.LoadProgram(c, prog())
				}
				res := system.Run(0)
				if !res.Finished {
					b.Fatal("did not finish")
				}
				ticks = res.SimTicks
			}
			b.ReportMetric(float64(ticks), "sim_ticks")
		})
	}
}

// BenchmarkAblationCPUModels compares simulation cost (host time) and
// simulated time across the four CPU models on one workload — the
// speed/fidelity tradeoff Figure 8's caption describes.
func BenchmarkAblationCPUModels(b *testing.B) {
	prog := func() *isa.Program {
		return isa.Generate(isa.GenSpec{Name: "mix", Seed: 12, Iterations: 2000,
			BodyOps: 32, Mix: isa.Mix{Load: 0.25, Store: 0.1, Branch: 0.1, MulDiv: 0.05},
			FootprintWords: 1 << 14, StrideWords: 3})
	}
	for _, model := range cpu.AllModels {
		b.Run(string(model), func(b *testing.B) {
			var ticks sim.Tick
			for i := 0; i < b.N; i++ {
				m := buildMem(b, "classic", 1)
				system := cpu.NewSystem(cpu.Config{Model: model, Cores: 1}, m)
				system.LoadProgram(0, prog())
				res := system.Run(0)
				if !res.Finished {
					b.Fatal("did not finish")
				}
				ticks = res.SimTicks
			}
			b.ReportMetric(float64(ticks), "sim_ticks")
		})
	}
}

// BenchmarkAblationGPUScoreboard ablates the GPU dependence tracker: the
// paper's §VI-C diagnosis says the simplistic tracker is why dynamic
// loses; with the precise tracker the pooling layers flip to dynamic.
func BenchmarkAblationGPUScoreboard(b *testing.B) {
	w, err := workloads.FindGPUWorkload("fwd_pool")
	if err != nil {
		b.Fatal(err)
	}
	for _, precise := range []bool{false, true} {
		name := "simplistic"
		if precise {
			name = "precise"
		}
		b.Run(name, func(b *testing.B) {
			var sp float64
			for i := 0; i < b.N; i++ {
				sp, err = gpu.Speedup(gpu.Config{PreciseDeps: precise}, w.Kernel)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(sp, "dynamic_speedup")
		})
	}
}

// BenchmarkAblationPoolWidth measures boot-sweep throughput at different
// task-pool widths — the "schedule as the host system allows" knob.
func BenchmarkAblationPoolWidth(b *testing.B) {
	cells := kernel.Sweep()[:48]
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env, err := experiments.NewEnv("")
				if err != nil {
					b.Fatal(err)
				}
				if _, err := env.RunBootSweep(workers, cells); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func buildMem(b *testing.B, name string, cores int) memSystem {
	b.Helper()
	switch name {
	case "classic":
		return newClassic(cores)
	case "ruby.MI_example":
		return newRuby(cores, "MI_example")
	case "ruby.MESI_Two_Level":
		return newRuby(cores, "MESI_Two_Level")
	}
	b.Fatalf("unknown mem %q", name)
	return nil
}
